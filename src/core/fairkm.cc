#include "core/fairkm.h"

#include <cmath>

#include "core/solver.h"

namespace fairkm {
namespace core {

double SuggestLambda(size_t num_rows, int k) {
  FAIRKM_DCHECK(k > 0);
  const double ratio = static_cast<double>(num_rows) / static_cast<double>(k);
  return ratio * ratio;
}

Status FairKMOptions::Validate() const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (minibatch_size < 0) {
    return Status::InvalidArgument("minibatch_size must be >= 0");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (sweep_mode == SweepMode::kParallelSnapshot && minibatch_size == 0) {
    return Status::InvalidArgument(
        "parallel snapshot sweep requires minibatch_size > 0 (candidates are "
        "evaluated against the frozen prototype snapshot)");
  }
  if (std::isnan(lambda) || std::isinf(lambda)) {
    return Status::InvalidArgument(
        "lambda must be finite (negative means auto)");
  }
  if (std::isnan(min_improvement) || min_improvement < 0.0) {
    return Status::InvalidArgument("min_improvement must be >= 0");
  }
  return Status::OK();
}

// Compatibility wrapper: one blocking run of the FairKMSolver session
// (core/solver.h), which owns the Algorithm-1 sweep engine. Equal inputs and
// rng draws yield trajectories bit-identical to the historical in-place
// implementation.
Result<FairKMResult> RunFairKM(const data::Matrix& points,
                               const data::SensitiveView& sensitive,
                               const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  FAIRKM_ASSIGN_OR_RETURN(FairKMSolver solver,
                          FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(RunStop stop, solver.Run());
  (void)stop;  // Converged or hit max_iterations; both finalize below.
  return solver.CurrentResult();
}

}  // namespace core
}  // namespace fairkm
