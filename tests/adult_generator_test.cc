#include "data/adult_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/sensitive.h"

namespace fairkm {
namespace data {
namespace {

AdultOptions SmallOptions() {
  AdultOptions opt;
  opt.seed = 11;
  opt.num_rows = 4000;
  opt.target_positive = 1000;
  return opt;
}

TEST(AdultGeneratorTest, SchemaMatchesPaperTable3Cardinalities) {
  auto r = GenerateAdult(SmallOptions());
  ASSERT_TRUE(r.ok());
  const Dataset& d = r.ValueOrDie();
  // The five sensitive attributes with the paper's exact cardinalities.
  EXPECT_EQ(d.FindCategorical("marital_status").ValueOrDie()->cardinality(), 7);
  EXPECT_EQ(d.FindCategorical("relationship_status").ValueOrDie()->cardinality(), 6);
  EXPECT_EQ(d.FindCategorical("race").ValueOrDie()->cardinality(), 5);
  EXPECT_EQ(d.FindCategorical("gender").ValueOrDie()->cardinality(), 2);
  EXPECT_EQ(d.FindCategorical("native_country").ValueOrDie()->cardinality(), 41);
  // 8 numeric task attributes.
  EXPECT_EQ(AdultTaskNames().size(), 8u);
  for (const auto& name : AdultTaskNames()) {
    EXPECT_TRUE(d.FindNumeric(name).ok()) << name;
  }
}

TEST(AdultGeneratorTest, RowCountAndIncomeSplit) {
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 4000u);
  const auto* income = d.FindCategorical("income").ValueOrDie();
  size_t positives = 0;
  for (int32_t c : income->codes) positives += c == 1 ? 1 : 0;
  EXPECT_EQ(positives, 1000u);  // Rank labelling is exact.
}

TEST(AdultGeneratorTest, DefaultsMatchPaperCounts) {
  AdultOptions opt;  // 32,561 rows, 7,841 positives.
  auto d = GenerateAdultParity(opt).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 15682u);  // Paper §5.1.
  const auto* income = d.FindCategorical("income").ValueOrDie();
  std::vector<double> fr = income->Fractions();
  EXPECT_DOUBLE_EQ(fr[0], 0.5);
  EXPECT_DOUBLE_EQ(fr[1], 0.5);
}

TEST(AdultGeneratorTest, DeterministicForSeed) {
  auto a = GenerateAdult(SmallOptions()).ValueOrDie();
  auto b = GenerateAdult(SmallOptions()).ValueOrDie();
  EXPECT_EQ(a.FindNumeric("age").ValueOrDie()->values,
            b.FindNumeric("age").ValueOrDie()->values);
  EXPECT_EQ(a.FindCategorical("race").ValueOrDie()->codes,
            b.FindCategorical("race").ValueOrDie()->codes);
}

TEST(AdultGeneratorTest, SeedsChangeData) {
  AdultOptions o1 = SmallOptions();
  AdultOptions o2 = SmallOptions();
  o2.seed = 12;
  auto a = GenerateAdult(o1).ValueOrDie();
  auto b = GenerateAdult(o2).ValueOrDie();
  EXPECT_NE(a.FindNumeric("age").ValueOrDie()->values,
            b.FindNumeric("age").ValueOrDie()->values);
}

TEST(AdultGeneratorTest, MarginalsAreSkewedRealistically) {
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  std::vector<double> race = d.FindCategorical("race").ValueOrDie()->Fractions();
  EXPECT_GT(race[0], 0.8);  // Majority race dominates (paper §5.6: ~87%).
  std::vector<double> country =
      d.FindCategorical("native_country").ValueOrDie()->Fractions();
  EXPECT_GT(country[0], 0.85);  // United-States dominates.
  std::vector<double> gender = d.FindCategorical("gender").ValueOrDie()->Fractions();
  EXPECT_GT(gender[0], 0.6);
  EXPECT_LT(gender[0], 0.75);
}

TEST(AdultGeneratorTest, SensitiveAttributesCorrelateWithTaskAttributes) {
  // The whole study requires S-information to leak into N. Check a known
  // channel: mean working hours differ by gender.
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  const auto* gender = d.FindCategorical("gender").ValueOrDie();
  const auto* hours = d.FindNumeric("hours_per_week").ValueOrDie();
  double sum[2] = {0, 0};
  size_t cnt[2] = {0, 0};
  for (size_t i = 0; i < d.num_rows(); ++i) {
    sum[gender->codes[i]] += hours->values[i];
    ++cnt[gender->codes[i]];
  }
  const double male = sum[0] / static_cast<double>(cnt[0]);
  const double female = sum[1] / static_cast<double>(cnt[1]);
  EXPECT_GT(male - female, 2.0);
}

TEST(AdultGeneratorTest, NumericRangesSane) {
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  for (double v : d.FindNumeric("age").ValueOrDie()->values) {
    EXPECT_GE(v, 17.0);
    EXPECT_LE(v, 90.0);
  }
  for (double v : d.FindNumeric("education_num").ValueOrDie()->values) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 16.0);
  }
  for (double v : d.FindNumeric("hours_per_week").ValueOrDie()->values) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 99.0);
  }
  for (double v : d.FindNumeric("capital_gain_log").ValueOrDie()->values) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(AdultGeneratorTest, InvalidOptionsRejected) {
  AdultOptions bad = SmallOptions();
  bad.num_rows = 0;
  EXPECT_FALSE(GenerateAdult(bad).ok());
  bad = SmallOptions();
  bad.target_positive = bad.num_rows;
  EXPECT_FALSE(GenerateAdult(bad).ok());
}

TEST(AdultGeneratorTest, ParityKeepsAllPositives) {
  auto d = GenerateAdultParity(SmallOptions()).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 2000u);
}

TEST(AdultGeneratorTest, CountryCorrelatesWithRace) {
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  const auto* race = d.FindCategorical("race").ValueOrDie();
  const auto* country = d.FindCategorical("native_country").ValueOrDie();
  size_t asian_total = 0, asian_foreign = 0, white_total = 0, white_foreign = 0;
  for (size_t i = 0; i < d.num_rows(); ++i) {
    if (race->codes[i] == 2) {
      ++asian_total;
      if (country->codes[i] != 0) ++asian_foreign;
    }
    if (race->codes[i] == 0) {
      ++white_total;
      if (country->codes[i] != 0) ++white_foreign;
    }
  }
  ASSERT_GT(asian_total, 0u);
  ASSERT_GT(white_total, 0u);
  EXPECT_GT(static_cast<double>(asian_foreign) / asian_total,
            static_cast<double>(white_foreign) / white_total);
}

TEST(AdultGeneratorTest, SensitiveViewBuildsOverAllFiveAttributes) {
  auto d = GenerateAdult(SmallOptions()).ValueOrDie();
  auto view = MakeSensitiveView(d, AdultSensitiveNames());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.ValueOrDie().categorical.size(), 5u);
}

}  // namespace
}  // namespace data
}  // namespace fairkm
