// Unit tests for the dense row-major Matrix and the aligned hot-path
// storage (AlignedVector / PointStore).

#include "data/matrix.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "data/point_store.h"

namespace fairkm {
namespace data {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.data().empty());
}

TEST(MatrixTest, SizedConstructorFills) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FALSE(m.empty());
  ASSERT_EQ(m.data().size(), 6u);
  for (double v : m.data()) EXPECT_EQ(v, 1.5);
}

TEST(MatrixTest, ZeroRowOrColumnCountsAsEmpty) {
  EXPECT_TRUE(Matrix(0, 4).empty());
  EXPECT_TRUE(Matrix(4, 0).empty());
}

TEST(MatrixTest, AtAndRowAgreeOnRowMajorLayout) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = static_cast<double>(10 * r + c);
  }
  const Matrix& cm = m;
  for (size_t r = 0; r < 2; ++r) {
    const double* row = cm.Row(r);
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(row[c], cm.At(r, c));
      EXPECT_EQ(row[c], static_cast<double>(10 * r + c));
    }
  }
  // Row() pointers are row_index * cols apart in one contiguous buffer.
  EXPECT_EQ(cm.Row(1), cm.Row(0) + cm.cols());
}

TEST(MatrixTest, RowWritesThrough) {
  Matrix m(2, 2);
  double* row = m.Row(1);
  row[0] = 7.0;
  row[1] = 8.0;
  EXPECT_EQ(m.At(1, 0), 7.0);
  EXPECT_EQ(m.At(1, 1), 8.0);
}

TEST(MatrixTest, SelectRowsCopiesInOrder) {
  Matrix m(4, 2);
  for (size_t r = 0; r < 4; ++r) {
    m.At(r, 0) = static_cast<double>(r);
    m.At(r, 1) = static_cast<double>(r) + 0.5;
  }
  const Matrix sel = m.SelectRows({3, 0, 3});
  ASSERT_EQ(sel.rows(), 3u);
  ASSERT_EQ(sel.cols(), 2u);
  EXPECT_EQ(sel.At(0, 0), 3.0);
  EXPECT_EQ(sel.At(1, 0), 0.0);
  EXPECT_EQ(sel.At(2, 1), 3.5);
}

TEST(MatrixTest, SelectNoRowsGivesEmptyMatrixWithSameCols) {
  Matrix m(2, 5);
  const Matrix sel = m.SelectRows({});
  EXPECT_EQ(sel.rows(), 0u);
  EXPECT_EQ(sel.cols(), 5u);
  EXPECT_TRUE(sel.empty());
}

TEST(MatrixTest, MoveConstructionStealsTheBufferWithoutCopying) {
  Matrix m(128, 4, 2.0);
  const double* buffer = m.data().data();
  Matrix moved(std::move(m));
  EXPECT_EQ(moved.rows(), 128u);
  EXPECT_EQ(moved.cols(), 4u);
  // std::vector move guarantees pointer stability: no reallocation happened.
  EXPECT_EQ(moved.data().data(), buffer);
  EXPECT_EQ(moved.At(127, 3), 2.0);
}

TEST(MatrixTest, MoveAssignmentStealsTheBuffer) {
  Matrix m(16, 3, -1.0);
  const double* buffer = m.data().data();
  Matrix target(2, 2);
  target = std::move(m);
  EXPECT_EQ(target.rows(), 16u);
  EXPECT_EQ(target.cols(), 3u);
  EXPECT_EQ(target.data().data(), buffer);
  EXPECT_EQ(target.At(15, 2), -1.0);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix m(2, 2, 1.0);
  Matrix copy = m;
  copy.At(0, 0) = 9.0;
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_NE(copy.data().data(), m.data().data());
}

TEST(SquaredDistanceTest, MatchesHandComputation) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, 0.0, 3.0};
  EXPECT_EQ(SquaredDistance(a, b, 3), 9.0 + 4.0 + 0.0);
  EXPECT_EQ(SquaredDistance(a, a, 3), 0.0);
  EXPECT_EQ(SquaredDistance(a, b, 0), 0.0);
}

TEST(AlignedStorageTest, PaddedStrideRoundsToFourDoubles) {
  EXPECT_EQ(PaddedStride(1), 4u);
  EXPECT_EQ(PaddedStride(4), 4u);
  EXPECT_EQ(PaddedStride(5), 8u);
  EXPECT_EQ(PaddedStride(8), 8u);
  EXPECT_EQ(PaddedStride(0), 0u);
}

TEST(AlignedStorageTest, MatrixStorageIs32ByteAligned) {
  // The serving tier's zero-copy fast path streams request matrices through
  // the aligned kernels whenever cols is a whole number of SIMD lanes; that
  // contract needs every Matrix base pointer 32-byte aligned.
  for (size_t cols : {1, 4, 64}) {
    Matrix m(17, cols, 1.0);
    EXPECT_EQ(
        reinterpret_cast<uintptr_t>(m.data().data()) % kKernelAlignment, 0u)
        << "cols=" << cols;
  }
}

TEST(AlignedStorageTest, AlignedVectorIs32ByteAligned) {
  for (size_t n : {1, 3, 7, 100, 1000}) {
    AlignedVector v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kKernelAlignment, 0u)
        << "n=" << n;
  }
}

TEST(PointStoreTest, CopiesRowsWithZeroFilledPadding) {
  Matrix m(3, 5);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 5; ++c) m.At(r, c) = static_cast<double>(10 * r + c);
  }
  PointStore store(m);
  EXPECT_EQ(store.rows(), 3u);
  EXPECT_EQ(store.cols(), 5u);
  EXPECT_EQ(store.stride(), 8u);
  for (size_t r = 0; r < 3; ++r) {
    const double* row = store.Row(r);
    // Every row of the padded store starts 32-byte aligned.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(row) % kKernelAlignment, 0u) << r;
    for (size_t c = 0; c < 5; ++c) EXPECT_EQ(row[c], m.At(r, c));
    for (size_t c = 5; c < store.stride(); ++c) EXPECT_EQ(row[c], 0.0);
  }
}

TEST(PointStoreTest, DefaultConstructedIsEmpty) {
  PointStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.rows(), 0u);
  EXPECT_EQ(store.stride(), 0u);
}

TEST(MatrixTest, ValidateFiniteRejectsNanAndInf) {
  Matrix m(2, 3, 1.0);
  EXPECT_TRUE(ValidateFinite(m, "points").ok());
  EXPECT_TRUE(ValidateFinite(Matrix(), "points").ok());

  m.At(1, 2) = std::numeric_limits<double>::quiet_NaN();
  const Status nan_st = ValidateFinite(m, "points");
  EXPECT_EQ(nan_st.code(), StatusCode::kInvalidArgument);
  // The message pinpoints the offending cell.
  EXPECT_NE(nan_st.message().find("row 1"), std::string::npos);
  EXPECT_NE(nan_st.message().find("column 2"), std::string::npos);

  m.At(1, 2) = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateFinite(m, "points").code(), StatusCode::kInvalidArgument);
  m.At(1, 2) = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateFinite(m, "points").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace data
}  // namespace fairkm
