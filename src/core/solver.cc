#include "core/solver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/kmeans.h"
#include "common/io.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/checkpoint_io.h"
#include "core/kernels/kernels.h"

namespace fairkm {
namespace core {

FairKMSolver::FairKMSolver(const data::Matrix* points,
                           const data::SensitiveView* sensitive,
                           FairKMOptions options)
    : points_(points),
      sensitive_(sensitive),
      options_(options),
      n_(points->rows()),
      cols_(points->cols()),
      lambda_(options.lambda < 0 ? SuggestLambda(points->rows(), options.k)
                                 : options.lambda),
      minibatch_(options.minibatch_size > 0),
      // Hoisted batch size: one full sweep is a single "batch" without
      // mini-batching, so the sweep engine is uniform across modes.
      batch_size_(options.minibatch_size > 0
                      ? static_cast<size_t>(options.minibatch_size)
                      : points->rows()),
      parallel_(options.sweep_mode == SweepMode::kParallelSnapshot),
      // Bound-gated pruning (core/pruning.h): on unless the options or the
      // FAIRKM_DISABLE_PRUNING escape hatch turn it off. k = 1 has no
      // candidate moves to gate, so skip the bookkeeping entirely.
      pruning_(options.enable_pruning && !PruningDisabledByEnv() &&
               options.k > 1) {}

FairKMSolver::FairKMSolver(std::shared_ptr<const data::PointStore> store,
                           const data::SensitiveView* sensitive,
                           FairKMOptions options)
    : points_(nullptr),
      store_(std::move(store)),
      sensitive_(sensitive),
      options_(options),
      n_(store_->rows()),
      cols_(store_->cols()),
      lambda_(options.lambda < 0 ? SuggestLambda(store_->rows(), options.k)
                                 : options.lambda),
      minibatch_(options.minibatch_size > 0),
      batch_size_(options.minibatch_size > 0
                      ? static_cast<size_t>(options.minibatch_size)
                      : store_->rows()),
      parallel_(options.sweep_mode == SweepMode::kParallelSnapshot),
      pruning_(options.enable_pruning && !PruningDisabledByEnv() &&
               options.k > 1) {}

FairKMSolver::FairKMSolver(FairKMSolver&&) noexcept = default;
FairKMSolver& FairKMSolver::operator=(FairKMSolver&&) noexcept = default;
FairKMSolver::~FairKMSolver() = default;

Result<FairKMSolver> FairKMSolver::Create(const data::Matrix* points,
                                          const data::SensitiveView* sensitive,
                                          const FairKMOptions& options) {
  if (points == nullptr || sensitive == nullptr) {
    return Status::InvalidArgument("points/sensitive must not be null");
  }
  // Catch NaN/Inf coordinates before the session binds them: once inside
  // the aligned point store they would silently poison every aggregate.
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(*points, "points"));
  // One validity surface for the options (FairKMOptions::Validate). It
  // checks k before anything that would reach SuggestLambda, whose k > 0
  // DCHECK would abort first in debug builds.
  FAIRKM_RETURN_NOT_OK(options.Validate());
  return FairKMSolver(points, sensitive, options);
}

Result<FairKMSolver> FairKMSolver::Create(
    std::shared_ptr<const data::PointStore> store,
    const data::SensitiveView* sensitive, const FairKMOptions& options) {
  if (store == nullptr || sensitive == nullptr) {
    return Status::InvalidArgument("store/sensitive must not be null");
  }
  if (store->empty()) {
    return Status::InvalidArgument("store must not be empty");
  }
  // The store's checksums prove the bytes survived the round trip, not that
  // the payload was finite; scan here exactly as the matrix path does.
  FAIRKM_RETURN_NOT_OK(data::ValidateFiniteStore(*store, "points"));
  FAIRKM_RETURN_NOT_OK(options.Validate());
  return FairKMSolver(std::move(store), sensitive, options);
}

Status FairKMSolver::Init(Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (points_ == nullptr) {
    // Store-backed session: only the paper's random-assignment init is
    // available (the other strategies score candidate centers against the
    // full matrix). MakeRandomAssignment draws exactly what the matrix path
    // draws, so equal seeds keep the two backends bit-identical.
    if (options_.init != cluster::KMeansInit::kRandomAssignment) {
      return Status::InvalidArgument(
          "store-backed sessions support only KMeansInit::kRandomAssignment "
          "(or a warm-start assignment)");
    }
    FAIRKM_ASSIGN_OR_RETURN(
        cluster::Assignment initial,
        cluster::MakeRandomAssignment(n_, options_.k, rng));
    return Init(std::move(initial));
  }
  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment initial,
      cluster::MakeInitialAssignment(*points_, options_.k, options_.init, rng));
  return Init(std::move(initial));
}

Status FairKMSolver::Init(uint64_t seed) {
  Rng rng(seed);
  return Init(&rng);
}

Status FairKMSolver::Init(cluster::Assignment warm_start) {
  if (!state_) {
    // First Init: build the session state — the aligned point store, norm
    // caches, aggregates, bound tables, pruner, thread pool and batch
    // scratch. Every later Init reuses all of it. A store-backed session
    // hands its (possibly memory-mapped) store to the state instead of a
    // matrix to copy.
    if (points_ != nullptr) {
      FAIRKM_ASSIGN_OR_RETURN(
          FairKMState built,
          FairKMState::Create(points_, sensitive_, options_.k,
                              std::move(warm_start), options_.fairness));
      state_ = std::make_unique<FairKMState>(std::move(built));
    } else {
      FAIRKM_ASSIGN_OR_RETURN(
          FairKMState built,
          FairKMState::Create(store_, sensitive_, options_.k,
                              std::move(warm_start), options_.fairness));
      state_ = std::make_unique<FairKMState>(std::move(built));
    }
    state_->EnablePrototypeSnapshot(minibatch_);
    state_->EnableBoundTracking(pruning_);
    if (pruning_) {
      pruner_ = std::make_unique<SweepPruner>(state_.get(), lambda_,
                                              options_.min_improvement);
    }
    const size_t k = static_cast<size_t>(options_.k);
    // Scratch for the batched K-Means kernel: one row of k candidate deltas
    // (plus, when pruning, k exported distances) per in-flight point — the
    // whole mini-batch in parallel mode, one row otherwise.
    const size_t rows = parallel_ ? std::min(batch_size_, std::max<size_t>(n_, 1))
                                  : 1;
    km_deltas_.assign(rows * k, 0.0);
    km_dists_.assign(pruning_ ? rows * k : 0, 0.0);
    evaluated_.assign(parallel_ ? rows : 0, 1);
    if (parallel_) {
      const size_t num_threads = options_.num_threads > 0
                                     ? static_cast<size_t>(options_.num_threads)
                                     : ThreadPool::DefaultThreadCount();
      if (num_threads > 1) pool_ = std::make_unique<ThreadPool>(num_threads);
    }
  } else {
    FAIRKM_RETURN_NOT_OK(state_->Reset(std::move(warm_start)));
    if (pruner_) {
      pruner_->Reset();
      pruner_->set_lambda(lambda_);
    }
  }
  sweeps_completed_ = 0;
  converged_ = false;
  next_point_ = 0;
  moves_in_sweep_ = 0;
  objective_history_.clear();
  total_candidates_ = 0;
  pruned_candidates_ = 0;
  sweep_seconds_ = 0.0;
  return Status::OK();
}

double FairKMSolver::Objective() const {
  FAIRKM_DCHECK(state_ != nullptr);
  return state_->KMeansTermCached() + lambda_ * state_->FairnessTermCached();
}

// Picks the best move for point i given its precomputed per-cluster K-Means
// deltas and the live O(1)-per-attribute fairness deltas, and applies it.
// Returns true when the point moved.
bool FairKMSolver::ApplyBestMove(size_t i, const double* km_deltas) {
  const int from = state_->cluster_of(i);
  double best_delta = -options_.min_improvement;
  int best_cluster = from;
  for (int c = 0; c < options_.k; ++c) {
    if (c == from) continue;
    const double delta = km_deltas[c] + lambda_ * state_->DeltaFairness(i, c);
    if (delta < best_delta) {
      best_delta = delta;
      best_cluster = c;
    }
  }
  if (best_cluster == from) return false;
  state_->Move(i, best_cluster);
  return true;
}

void FairKMSolver::ProcessBatchSerial(size_t batch_start, size_t batch_end) {
  const size_t k = static_cast<size_t>(options_.k);
  const uint64_t cands_per_point = static_cast<uint64_t>(k - 1);
  for (size_t i = batch_start; i < batch_end; ++i) {
    total_candidates_ += cands_per_point;
    if (pruner_ && pruner_->ShouldPrune(i)) {
      pruned_candidates_ += cands_per_point;
      continue;
    }
    state_->DeltaKMeansAllClusters(i, km_deltas_.data(), DistsRow(0));
    if (pruner_) pruner_->Refresh(i, DistsRow(0));
    if (ApplyBestMove(i, km_deltas_.data())) {
      if (pruner_) pruner_->Invalidate(i);
      ++moves_in_sweep_;
    }
  }
}

void FairKMSolver::ProcessBatchParallel(size_t batch_start, size_t batch_end) {
  const size_t k = static_cast<size_t>(options_.k);
  const uint64_t cands_per_point = static_cast<uint64_t>(k - 1);
  // Phase 1 (concurrent, read-only): batched K-Means deltas for every point
  // of the mini-batch that survives the pruning gate, against the frozen
  // prototype snapshot. Fairness deltas are intentionally left to phase 2 —
  // they read live aggregates, which is exactly what the serial mini-batch
  // sweep does, so both modes walk identical trajectories. The gate is
  // re-checked live in phase 2 (earlier moves of the same batch shift the
  // fairness bounds), so a phase-1 skip is only a prefetch decision, never a
  // correctness one.
  const size_t count = batch_end - batch_start;
  auto eval_point = [this, batch_start, k](size_t offset) {
    const size_t i = batch_start + offset;
    if (pruner_ && pruner_->ShouldPrune(i)) {
      evaluated_[offset] = 0;
      return;
    }
    evaluated_[offset] = 1;
    state_->DeltaKMeansAllClusters(i, km_deltas_.data() + offset * k,
                                   DistsRow(offset));
    if (pruner_) pruner_->Refresh(i, DistsRow(offset));
  };
  if (pool_) {
    const size_t shards = std::min(pool_->num_threads(), count);
    const size_t chunk = (count + shards - 1) / shards;
    for (size_t s = 0; s < shards; ++s) {
      const size_t lo = s * chunk;
      const size_t hi = std::min(count, lo + chunk);
      if (lo >= hi) break;
      pool_->Submit([&eval_point, lo, hi] {
        for (size_t off = lo; off < hi; ++off) eval_point(off);
      });
    }
    pool_->Wait();
  } else {
    for (size_t off = 0; off < count; ++off) eval_point(off);
  }
  // Phase 2 (sequential): pick and apply moves in round-robin order.
  // Phase-1 survivors go straight to the exact argmin — their deltas are
  // already computed, so re-running the gate would only duplicate the
  // fairness work ApplyBestMove does anyway. Phase-1-pruned points re-check
  // the gate live (earlier moves of this batch may have shifted the fairness
  // bounds); if it no longer holds they are evaluated on demand against the
  // still-frozen snapshot, which yields deltas identical to a phase-1
  // evaluation.
  for (size_t i = batch_start; i < batch_end; ++i) {
    const size_t offset = i - batch_start;
    total_candidates_ += cands_per_point;
    if (pruner_ && !evaluated_[offset]) {
      if (pruner_->ShouldPrune(i)) {
        pruned_candidates_ += cands_per_point;
        continue;
      }
      state_->DeltaKMeansAllClusters(i, km_deltas_.data() + offset * k,
                                     DistsRow(offset));
      pruner_->Refresh(i, DistsRow(offset));
    }
    if (ApplyBestMove(i, km_deltas_.data() + offset * k)) {
      if (pruner_) pruner_->Invalidate(i);
      ++moves_in_sweep_;
    }
  }
}

FairKMSolver::BatchesOutcome FairKMSolver::RunBatches(
    const ProgressCallback& progress, double deadline, double spent_before,
    RunStop* stop) {
  Timer call_timer;
  while (true) {
    const size_t batch_start = next_point_;
    const size_t batch_end = std::min(n_, batch_start + batch_size_);
    Timer batch_timer;
    if (parallel_) {
      ProcessBatchParallel(batch_start, batch_end);
    } else {
      ProcessBatchSerial(batch_start, batch_end);
    }
    // Re-synchronize the prototype snapshot at every mini-batch boundary
    // (the one-shot path refreshed interior boundaries in the loop and the
    // final batch after it — once per batch either way).
    if (minibatch_) state_->RefreshPrototypes();
    const bool sweep_done = batch_end >= n_;
    if (sweep_done) {
      ++sweeps_completed_;
      // O(k + k sum m) per sweep from the maintained caches — the scratch
      // O(n d) recompute would otherwise dominate a heavily pruned sweep.
      objective_history_.push_back(Objective());
      if (moves_in_sweep_ == 0) converged_ = true;
    }
    sweep_seconds_ += batch_timer.ElapsedSeconds();
    bool cancelled = false;
    if (progress) {
      SweepProgress p;
      p.sweep = sweep_done ? sweeps_completed_ : sweeps_completed_ + 1;
      p.points_processed = batch_end;
      p.num_points = n_;
      p.sweep_complete = sweep_done;
      p.moves_in_sweep = moves_in_sweep_;
      p.converged = converged_;
      p.objective = Objective();
      p.sweep_seconds = sweep_seconds_;
      cancelled = !progress(p);
    }
    if (sweep_done) {
      next_point_ = 0;
      moves_in_sweep_ = 0;
      if (cancelled) {
        *stop = RunStop::kCancelled;
        return BatchesOutcome::kStopped;
      }
      return BatchesOutcome::kSweepComplete;
    }
    next_point_ = batch_end;
    if (cancelled) {
      *stop = RunStop::kCancelled;
      return BatchesOutcome::kStopped;
    }
    if (deadline >= 0 &&
        spent_before + call_timer.ElapsedSeconds() >= deadline) {
      *stop = RunStop::kTimeBudget;
      return BatchesOutcome::kStopped;
    }
  }
}

Result<bool> FairKMSolver::Sweep() {
  if (!initialized()) {
    return Status::InvalidArgument("solver not initialized: call Init first");
  }
  if (converged_) return false;
  // The session's iteration cap applies to stepwise driving too (a pending
  // cancelled sweep may still finish).
  if (!mid_sweep() && sweeps_completed_ >= options_.max_iterations) {
    return false;
  }
  RunStop stop = RunStop::kConverged;
  // With no callback and no deadline the batch engine always completes the
  // pending sweep.
  (void)RunBatches(nullptr, /*deadline=*/-1.0, /*spent_before=*/0.0, &stop);
  return !converged_;
}

Result<RunStop> FairKMSolver::Run(const RunBudget& budget,
                                  const ProgressCallback& progress) {
  if (budget.resume && !budget.checkpoint_dir.empty()) {
    Status st = ResumeFromCheckpointDir(budget.checkpoint_dir);
    // An empty/missing directory means "nothing to resume yet": fall
    // through to the solver's current state. Corruption (kDataLoss) and
    // real I/O failures do surface.
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  }
  if (!initialized()) {
    return Status::InvalidArgument("solver not initialized: call Init first");
  }
  const bool auto_checkpoint =
      budget.checkpoint_every > 0 && !budget.checkpoint_dir.empty();
  if (auto_checkpoint) {
    FAIRKM_RETURN_NOT_OK(io::CreateDirectories(budget.checkpoint_dir));
  }
  if (converged_) return RunStop::kConverged;
  Timer run_timer;
  int sweeps_this_call = 0;
  int last_saved_sweep = -1;
  bool last_save_mid_sweep = false;
  auto checkpoint_now = [&]() -> Status {
    FAIRKM_RETURN_NOT_OK(SaveCheckpoint(budget.checkpoint_dir + "/" +
                                        CheckpointFileName(sweeps_completed_)));
    last_saved_sweep = sweeps_completed_;
    last_save_mid_sweep = mid_sweep();
    return PruneCheckpointDir(budget.checkpoint_dir, budget.checkpoint_keep);
  };
  // Every stop path also checkpoints (unless the stop state is already on
  // disk), so a restart resumes from the stop point, not the last interval.
  auto finish = [&](RunStop stop) -> Result<RunStop> {
    if (auto_checkpoint && (last_saved_sweep != sweeps_completed_ ||
                            last_save_mid_sweep != mid_sweep())) {
      FAIRKM_RETURN_NOT_OK(checkpoint_now());
    }
    return stop;
  };
  while (true) {
    if (!mid_sweep() && sweeps_completed_ >= options_.max_iterations) {
      return finish(RunStop::kIterationCap);
    }
    if (budget.max_sweeps >= 0 && sweeps_this_call >= budget.max_sweeps) {
      return finish(RunStop::kSweepBudget);
    }
    if (budget.max_seconds >= 0 &&
        run_timer.ElapsedSeconds() >= budget.max_seconds) {
      return finish(RunStop::kTimeBudget);
    }
    // Lambda annealing: consult the schedule only at a true sweep boundary
    // (a resumed partial sweep finishes under its original weight), and only
    // apply a weight that actually differs — SetLambda resets nothing, but
    // skipping the call keeps a constant schedule a literal no-op.
    if (budget.lambda_schedule && !mid_sweep()) {
      const double next = budget.lambda_schedule(sweeps_completed_ + 1);
      if (!(next == lambda_)) {
        FAIRKM_RETURN_NOT_OK(SetLambda(next));
      }
    }
    RunStop stop = RunStop::kConverged;
    if (RunBatches(progress, budget.max_seconds, run_timer.ElapsedSeconds(),
                   &stop) == BatchesOutcome::kStopped) {
      // A callback cancelling on the boundary that converged the run is
      // still a converged run.
      return finish(converged_ ? RunStop::kConverged : stop);
    }
    ++sweeps_this_call;
    if (auto_checkpoint &&
        sweeps_completed_ % budget.checkpoint_every == 0) {
      FAIRKM_RETURN_NOT_OK(checkpoint_now());
    }
    if (converged_) return finish(RunStop::kConverged);
  }
}

Result<FairKMResult> FairKMSolver::CurrentResult() const {
  if (!initialized()) {
    return Status::InvalidArgument("solver not initialized: call Init first");
  }
  FairKMResult result;
  result.lambda_used = lambda_;
  result.pruning_enabled = pruning_;
  result.iterations = sweeps_completed_;
  result.converged = converged_;
  result.objective_history = objective_history_;
  result.sweep_seconds = sweep_seconds_;
  result.total_candidates = total_candidates_;
  result.pruned_candidates = pruned_candidates_;
  result.pruned_fraction = result.PrunedFraction();
  result.assignment = state_->assignment();
  if (points_ != nullptr) {
    cluster::FinalizeResult(*points_, options_.k, &result);
  } else {
    // Store-backed finalize, mirroring cluster::FinalizeResult exactly —
    // same ComputeCentroids accumulation order (row-major sum, then one
    // 1/|C| scale) and same SumOfSquaredErrors loop — so matrix- and
    // store-backed sessions report bit-identical centroids and objectives.
    // Both passes stream in chunks and evict behind themselves, keeping the
    // finalize RSS-bounded on mmap stores (eviction never changes a read).
    const size_t k = static_cast<size_t>(options_.k);
    const size_t chunk_rows = std::max<size_t>(
        1, (size_t{8} << 20) / (store_->stride() * sizeof(double)));
    data::Matrix centroids(k, cols_);
    std::vector<size_t> sizes(k, 0);
    for (size_t base = 0; base < n_; base += chunk_rows) {
      const size_t end = std::min(n_, base + chunk_rows);
      for (size_t i = base; i < end; ++i) {
        const size_t c = static_cast<size_t>(result.assignment[i]);
        ++sizes[c];
        const double* row = store_->Row(i);
        double* acc = centroids.Row(c);
        for (size_t j = 0; j < cols_; ++j) acc[j] += row[j];
      }
      store_->EvictRows(base, end);
    }
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;
      double* acc = centroids.Row(c);
      const double inv = 1.0 / static_cast<double>(sizes[c]);
      for (size_t j = 0; j < cols_; ++j) acc[j] *= inv;
    }
    double sse = 0.0;
    for (size_t base = 0; base < n_; base += chunk_rows) {
      const size_t end = std::min(n_, base + chunk_rows);
      for (size_t i = base; i < end; ++i) {
        sse += data::SquaredDistance(
            store_->Row(i),
            centroids.Row(static_cast<size_t>(result.assignment[i])), cols_);
      }
      store_->EvictRows(base, end);
    }
    result.centroids = std::move(centroids);
    result.sizes = std::move(sizes);
    result.kmeans_objective = sse;
  }
  result.kmeans_term = result.kmeans_objective;
  result.fairness_term = state_->FairnessTerm();
  result.total_objective = result.kmeans_term + lambda_ * result.fairness_term;
  return result;
}

Result<SolverCheckpoint> FairKMSolver::Snapshot() const {
  if (!initialized()) {
    return Status::InvalidArgument("solver not initialized: nothing to snapshot");
  }
  SolverCheckpoint cp;
  cp.num_rows = n_;
  cp.k = options_.k;
  cp.batch_size = batch_size_;
  cp.parallel = parallel_;
  cp.lambda = lambda_;
  state_->SaveCheckpoint(&cp.state);
  cp.has_pruner = pruner_ != nullptr;
  if (pruner_) pruner_->SaveCheckpoint(&cp.pruner);
  cp.sweeps_completed = sweeps_completed_;
  cp.converged = converged_;
  cp.next_point = next_point_;
  cp.moves_in_sweep = moves_in_sweep_;
  cp.objective_history = objective_history_;
  cp.total_candidates = total_candidates_;
  cp.pruned_candidates = pruned_candidates_;
  cp.sweep_seconds = sweep_seconds_;
  return cp;
}

Status FairKMSolver::Restore(const SolverCheckpoint& cp) {
  if (cp.num_rows != n_ || cp.k != options_.k) {
    return Status::InvalidArgument(
        "checkpoint does not match this solver's inputs (n/k differ)");
  }
  if (cp.batch_size != batch_size_ || cp.parallel != parallel_) {
    return Status::InvalidArgument(
        "checkpoint was taken under a different mini-batch size or sweep "
        "mode (prototype-refresh boundaries would diverge)");
  }
  if (cp.has_pruner != pruning_) {
    return Status::InvalidArgument(
        "checkpoint was taken under a different pruning setting");
  }
  if (cp.next_point != 0 &&
      (cp.next_point >= n_ || cp.next_point % batch_size_ != 0)) {
    return Status::InvalidArgument(
        "checkpoint sweep cursor is not a mini-batch boundary");
  }
  if (!state_) {
    // Materialize the session state lazily from the checkpoint's
    // assignment, then overwrite with the exact float state below.
    FAIRKM_RETURN_NOT_OK(Init(cp.state.assignment));
  }
  FAIRKM_RETURN_NOT_OK(state_->RestoreCheckpoint(cp.state));
  if (pruner_) {
    FAIRKM_RETURN_NOT_OK(pruner_->RestoreCheckpoint(cp.pruner));
    pruner_->set_lambda(cp.lambda);
  }
  lambda_ = cp.lambda;
  sweeps_completed_ = cp.sweeps_completed;
  converged_ = cp.converged;
  next_point_ = cp.next_point;
  moves_in_sweep_ = cp.moves_in_sweep;
  objective_history_ = cp.objective_history;
  total_candidates_ = cp.total_candidates;
  pruned_candidates_ = cp.pruned_candidates;
  sweep_seconds_ = cp.sweep_seconds;
  return Status::OK();
}

Status FairKMSolver::SaveCheckpoint(const std::string& path) const {
  FAIRKM_ASSIGN_OR_RETURN(SolverCheckpoint cp, Snapshot());
  return WriteSolverCheckpoint(path, cp);
}

Status FairKMSolver::LoadCheckpoint(const std::string& path) {
  FAIRKM_ASSIGN_OR_RETURN(SolverCheckpoint cp, ReadSolverCheckpoint(path));
  return Restore(cp);
}

Status FairKMSolver::ResumeFromCheckpointDir(const std::string& dir) {
  FAIRKM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          ListCheckpointFiles(dir));
  if (names.empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }
  // Newest first; a corrupt (or incompatible) file falls back to the one
  // before it, so a crash that tore the latest write costs one interval,
  // not the run.
  Status newest_failure;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string path = dir + "/" + *it;
    Status st = LoadCheckpoint(path);
    if (st.ok()) return st;
    // Quarantine torn/corrupt frames (rename aside, never delete) so the
    // next resume stops re-parsing them and retention pruning skips them.
    // kInvalidArgument files stay: they are intact, just incompatible with
    // this binary or configuration.
    if (st.code() == StatusCode::kDataLoss) {
      (void)QuarantineCheckpoint(path);
    }
    if (newest_failure.ok()) newest_failure = st;
  }
  return Status::DataLoss("no valid checkpoint in " + dir +
                          " (newest failed with: " + newest_failure.ToString() +
                          ")");
}

Status FairKMSolver::SyncStoreGrowth() {
  if (points_ != nullptr) {
    return Status::InvalidArgument(
        "SyncStoreGrowth needs a store-backed session (matrix-backed "
        "sessions own an immutable copy of the rows)");
  }
  if (!initialized()) {
    return Status::InvalidArgument("solver not initialized: call Init first");
  }
  if (mid_sweep()) {
    return Status::InvalidArgument(
        "cannot resize the point set mid-sweep (finish the sweep first)");
  }
  if (store_->empty()) {
    return Status::InvalidArgument("store must not be empty");
  }
  if (state_->num_rows() != store_->rows()) {
    return Status::InvalidArgument(
        "solver state tracks " + std::to_string(state_->num_rows()) +
        " rows but the store holds " + std::to_string(store_->rows()) +
        " — bring the state to the store first (AdmitAppended/RetireSwapped)");
  }
  n_ = store_->rows();
  if (!minibatch_) batch_size_ = n_;
  // Resize the batch scratch exactly as the first Init sized it.
  const size_t k = static_cast<size_t>(options_.k);
  const size_t rows =
      parallel_ ? std::min(batch_size_, std::max<size_t>(n_, 1)) : 1;
  km_deltas_.assign(rows * k, 0.0);
  km_dists_.assign(pruning_ ? rows * k : 0, 0.0);
  evaluated_.assign(parallel_ ? rows : 0, 1);
  // The pruner's per-point bound tables are sized to n; rebuild it so every
  // bound restarts stale (never read until refreshed by an exact pass).
  if (pruning_) {
    pruner_ = std::make_unique<SweepPruner>(state_.get(), lambda_,
                                            options_.min_improvement);
  }
  converged_ = false;
  return Status::OK();
}

Status FairKMSolver::SetLambda(double lambda) {
  if (mid_sweep()) {
    return Status::InvalidArgument(
        "cannot change lambda mid-sweep (finish or re-Init the run first)");
  }
  lambda_ = lambda < 0 ? SuggestLambda(n_, options_.k) : lambda;
  // Record the RESOLVED weight: after auto-suggest the session's option must
  // agree with lambda_ (and with CurrentResult().lambda_used), not hold the
  // negative sentinel the caller passed.
  options_.lambda = lambda_;
  if (pruner_) pruner_->set_lambda(lambda_);
  return Status::OK();
}

Result<ModelExport> FairKMSolver::ExportModel() const {
  if (!initialized()) {
    return Status::InvalidArgument(
        "solver not initialized: ExportModel needs a trained state");
  }
  ModelExport m;
  m.num_rows = n_;
  m.d = cols_;
  m.stride = state_->stride();
  m.k = options_.k;
  m.lambda = lambda_;
  m.config = state_->config();
  const size_t k = static_cast<size_t>(options_.k);
  m.counts.resize(k);
  m.centroids.assign(k * m.stride, 0.0);
  m.centroid_norms.assign(k, 0.0);
  const data::AlignedVector& sums = state_->cluster_sums();
  for (size_t c = 0; c < k; ++c) {
    m.counts[c] = state_->cluster_size(static_cast<int>(c));
    if (m.counts[c] == 0) continue;
    // Same sums[j] * (1/|C|) expression as FairKMState::Centroids(), so the
    // exported centroid doubles are bit-identical to the ones the scalar
    // Assign oracle scores against. The zero padding of the sums rows keeps
    // the padded centroid entries exact zeros.
    const double inv = 1.0 / static_cast<double>(m.counts[c]);
    const double* src = sums.data() + c * m.stride;
    double* dst = m.centroids.data() + c * m.stride;
    for (size_t j = 0; j < m.d; ++j) dst[j] = src[j] * inv;
    m.centroid_norms[c] = kernels::Dot(dst, dst, m.stride);
  }
  state_->ExportFairnessMoments(&m.moments);
  m.categorical.reserve(sensitive_->categorical.size());
  for (const auto& attr : sensitive_->categorical) {
    m.categorical.push_back(
        {attr.name, attr.cardinality, attr.dataset_fractions, attr.weight});
  }
  m.numeric.reserve(sensitive_->numeric.size());
  for (const auto& attr : sensitive_->numeric) {
    m.numeric.push_back({attr.name, attr.dataset_mean, attr.weight});
  }
  return m;
}

Result<cluster::Assignment> FairKMSolver::Assign(
    const data::Matrix& new_points) const {
  return AssignImpl(new_points, nullptr);
}

Result<cluster::Assignment> FairKMSolver::Assign(
    const data::Matrix& new_points,
    const data::SensitiveView& new_sensitive) const {
  return AssignImpl(new_points, &new_sensitive);
}

Result<cluster::Assignment> FairKMSolver::AssignImpl(
    const data::Matrix& new_points,
    const data::SensitiveView* new_sensitive) const {
  if (!initialized()) {
    return Status::InvalidArgument(
        "solver not initialized: Assign needs a trained state");
  }
  if (new_points.cols() != cols_) {
    return Status::InvalidArgument(
        "new points have " + std::to_string(new_points.cols()) +
        " features, the trained model has " + std::to_string(cols_));
  }
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(new_points, "new points"));
  const size_t rows = new_points.rows();
  const size_t num_cat = sensitive_->categorical.size();
  const size_t num_num = sensitive_->numeric.size();
  if (new_sensitive != nullptr) {
    if (new_sensitive->categorical.size() != num_cat ||
        new_sensitive->numeric.size() != num_num) {
      return Status::InvalidArgument(
          "new sensitive view must mirror the training view's attribute "
          "structure (same categorical/numeric attributes, same order)");
    }
    // Check EVERY attribute's length, not just num_rows() (which reads only
    // the first attribute): a ragged view would otherwise pass here and the
    // code-range loop below would read attr.codes[i] out of bounds.
    for (size_t a = 0; a < num_cat; ++a) {
      const auto& attr = new_sensitive->categorical[a];
      if (attr.codes.size() != rows) {
        return Status::InvalidArgument(
            "new sensitive attribute \"" + sensitive_->categorical[a].name +
            "\" covers " + std::to_string(attr.codes.size()) +
            " rows, points have " + std::to_string(rows));
      }
    }
    for (size_t a = 0; a < num_num; ++a) {
      const auto& attr = new_sensitive->numeric[a];
      if (attr.values.size() != rows) {
        return Status::InvalidArgument(
            "new sensitive attribute \"" + sensitive_->numeric[a].name +
            "\" covers " + std::to_string(attr.values.size()) +
            " rows, points have " + std::to_string(rows));
      }
      for (size_t i = 0; i < rows; ++i) {
        if (!std::isfinite(attr.values[i])) {
          return Status::InvalidArgument(
              "new sensitive attribute \"" + sensitive_->numeric[a].name +
              "\" has a non-finite value at row " + std::to_string(i));
        }
      }
    }
    for (size_t a = 0; a < num_cat; ++a) {
      const auto& attr = new_sensitive->categorical[a];
      const int m = sensitive_->categorical[a].cardinality;
      for (size_t i = 0; i < rows; ++i) {
        if (attr.codes[i] < 0 || attr.codes[i] >= m) {
          return Status::InvalidArgument(
              "attribute \"" + sensitive_->categorical[a].name + "\" code " +
              std::to_string(attr.codes[i]) + " at row " + std::to_string(i) +
              " outside the trained cardinality " + std::to_string(m));
        }
      }
    }
  }

  // Score each point independently against the frozen trained model: the
  // Eq. 1 insertion cost |C|/(|C|+1) d(x, mu_C)^2 plus, when sensitive
  // values are supplied, lambda times the exact fairness insertion delta.
  // Empty clusters have no prototype to serve and are not candidates.
  const data::Matrix centroids = state_->Centroids();
  const size_t d = cols_;
  const int k = options_.k;
  cluster::Assignment out(rows, 0);
  std::vector<int32_t> codes(num_cat, 0);
  std::vector<double> values(num_num, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    const double* x = new_points.Row(i);
    if (new_sensitive != nullptr) {
      for (size_t a = 0; a < num_cat; ++a) {
        codes[a] = new_sensitive->categorical[a].codes[i];
      }
      for (size_t a = 0; a < num_num; ++a) {
        values[a] = new_sensitive->numeric[a].values[i];
      }
    }
    double best = 0.0;
    int best_cluster = -1;
    for (int c = 0; c < k; ++c) {
      const size_t cnt = state_->cluster_size(c);
      if (cnt == 0) continue;
      const double* mu = centroids.Row(static_cast<size_t>(c));
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = x[j] - mu[j];
        dist += diff * diff;
      }
      double cost =
          static_cast<double>(cnt) / static_cast<double>(cnt + 1) * dist;
      if (new_sensitive != nullptr) {
        cost += lambda_ * state_->DeltaFairnessInsertion(
                              codes.data(), values.data(), c);
      }
      if (best_cluster < 0 || cost < best) {
        best = cost;
        best_cluster = c;
      }
    }
    if (best_cluster < 0) {
      return Status::InvalidArgument(
          "trained model has no non-empty cluster to assign to");
    }
    out[i] = best_cluster;
  }
  return out;
}

}  // namespace core
}  // namespace fairkm
