#include "text/random_projection.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairkm {
namespace text {
namespace {

SparseVector Unit(int term) {
  SparseVector sv;
  sv.entries = {{term, 1.0}};
  return sv;
}

TEST(RandomProjectionTest, OutputShapeAndNormalization) {
  std::vector<SparseVector> docs = {Unit(0), Unit(1), Unit(2)};
  data::Matrix m = ProjectToDense(docs, 3, 16, 42);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 16u);
  for (size_t i = 0; i < 3; ++i) {
    double norm = 0;
    for (size_t j = 0; j < 16; ++j) norm += m.At(i, j) * m.At(i, j);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
  }
}

TEST(RandomProjectionTest, DeterministicInSeed) {
  std::vector<SparseVector> docs = {Unit(0), Unit(1)};
  data::Matrix a = ProjectToDense(docs, 2, 8, 7);
  data::Matrix b = ProjectToDense(docs, 2, 8, 7);
  EXPECT_EQ(a.data(), b.data());
  data::Matrix c = ProjectToDense(docs, 2, 8, 8);
  EXPECT_NE(a.data(), c.data());
}

TEST(RandomProjectionTest, EmptyDocumentStaysZero) {
  std::vector<SparseVector> docs = {SparseVector{}};
  data::Matrix m = ProjectToDense(docs, 4, 8, 1);
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(m.At(0, j), 0.0);
}

TEST(RandomProjectionTest, IdenticalDocsProjectIdentically) {
  SparseVector doc;
  doc.entries = {{0, 0.5}, {3, 0.7}};
  std::vector<SparseVector> docs = {doc, doc};
  data::Matrix m = ProjectToDense(docs, 5, 12, 3);
  for (size_t j = 0; j < 12; ++j) EXPECT_DOUBLE_EQ(m.At(0, j), m.At(1, j));
}

TEST(RandomProjectionTest, PreservesRelativeGeometry) {
  // Documents sharing terms should end up closer than disjoint ones, in
  // expectation; with 64 dims and clean inputs this is deterministic enough.
  SparseVector a, b, c;
  a.entries = {{0, 1.0}, {1, 1.0}};
  b.entries = {{0, 1.0}, {2, 1.0}};  // Shares term 0 with a.
  c.entries = {{3, 1.0}, {4, 1.0}};  // Disjoint from a.
  std::vector<SparseVector> docs = {a, b, c};
  data::Matrix m = ProjectToDense(docs, 5, 64, 11);
  const double dist_ab = data::SquaredDistance(m.Row(0), m.Row(1), 64);
  const double dist_ac = data::SquaredDistance(m.Row(0), m.Row(2), 64);
  EXPECT_LT(dist_ab, dist_ac);
}

}  // namespace
}  // namespace text
}  // namespace fairkm
