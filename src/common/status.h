// Status / Result error model, in the style of Apache Arrow and RocksDB.
//
// Fallible operations (I/O, solver failures, configuration validation) return
// Status or Result<T> instead of throwing. Programming errors are guarded with
// FAIRKM_DCHECK, which aborts in debug builds.

#ifndef FAIRKM_COMMON_STATUS_H_
#define FAIRKM_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace fairkm {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kUnbounded = 8,    ///< LP objective unbounded below.
  kInfeasible = 9,   ///< LP constraint system infeasible.
  kNotConverged = 10, ///< Iterative solver hit its iteration cap without converging.
  kDeadlineExceeded = 11, ///< The operation's wall-clock deadline passed.
  kUnavailable = 12, ///< Transiently overloaded or shutting down; retryable.
  kDataLoss = 13,    ///< Persisted data is corrupt or torn (unrecoverable read).
  kResourceExhausted = 14 ///< A finite resource ran out (disk full, quota).
};

/// \brief Returns a human-readable name for a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a context message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy; error
/// construction allocates only for the message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "<code name>: <message>" (or "OK").
  std::string ToString() const;

  /// \brief Aborts the process with the status message if not OK.
  ///
  /// Intended for examples and benches where an error is unrecoverable.
  void Abort() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Access to the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : payload_(std::move(value)) {}
  /*implicit*/ Result(Status status) : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// \brief The error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(payload_));
  }

  /// \brief Moves the value out, aborting with the status message on error.
  T MoveValueUnsafe() { return std::move(std::get<T>(payload_)); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::get<Status>(payload_).Abort();
    }
  }

  std::variant<T, Status> payload_;
};

/// \brief Propagates a non-OK Status from expr to the caller.
#define FAIRKM_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::fairkm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// \brief Assigns the value of a Result expression to lhs, or propagates its error.
#define FAIRKM_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto FAIRKM_CONCAT_(_res_, __LINE__) = (rexpr);  \
  if (!FAIRKM_CONCAT_(_res_, __LINE__).ok())       \
    return FAIRKM_CONCAT_(_res_, __LINE__).status(); \
  lhs = FAIRKM_CONCAT_(_res_, __LINE__).MoveValueUnsafe()

#define FAIRKM_CONCAT_IMPL_(a, b) a##b
#define FAIRKM_CONCAT_(a, b) FAIRKM_CONCAT_IMPL_(a, b)

/// \brief Debug-build invariant check (no-op in NDEBUG builds).
#ifdef NDEBUG
#define FAIRKM_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define FAIRKM_DCHECK(cond) assert(cond)
#endif

}  // namespace fairkm

#endif  // FAIRKM_COMMON_STATUS_H_
