#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>

#include "test_util.h"

namespace fairkm {
namespace cluster {
namespace {

TEST(KMeansTest, RejectsBadInputs) {
  data::Matrix empty;
  Rng rng(1);
  KMeansOptions opt;
  EXPECT_FALSE(RunKMeans(empty, opt, &rng).ok());

  data::Matrix two(2, 1);
  opt.k = 5;
  EXPECT_FALSE(RunKMeans(two, opt, &rng).ok());
  opt.k = 0;
  EXPECT_FALSE(RunKMeans(two, opt, &rng).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(3);
  data::Matrix pts = testutil::MakeBlobs(3, 40, 4, &rng);
  KMeansOptions opt;
  opt.k = 3;
  auto r = RunKMeans(pts, opt, &rng);
  ASSERT_TRUE(r.ok());
  const ClusteringResult& result = r.ValueOrDie();
  EXPECT_TRUE(result.converged);
  // Every blob should land in a single cluster: check that points 0..39 share
  // a label, 40..79 share one, 80..119 share one, and the labels differ.
  std::set<int32_t> labels;
  for (int b = 0; b < 3; ++b) {
    const int32_t label = result.assignment[static_cast<size_t>(b) * 40];
    labels.insert(label);
    for (size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(result.assignment[static_cast<size_t>(b) * 40 + i], label);
    }
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng gen(5);
  data::Matrix pts = testutil::MakeBlobs(4, 25, 3, &gen);
  KMeansOptions opt;
  opt.k = 4;
  Rng r1(77), r2(77);
  auto a = RunKMeans(pts, opt, &r1).ValueOrDie();
  auto b = RunKMeans(pts, opt, &r2).ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansTest, ObjectiveNeverBelowBestOfManyRestarts) {
  // Sanity: a single run is a local optimum; SSE must be finite and positive.
  Rng gen(9);
  data::Matrix pts = testutil::MakeBlobs(2, 30, 2, &gen);
  KMeansOptions opt;
  opt.k = 2;
  Rng rng(1);
  auto r = RunKMeans(pts, opt, &rng).ValueOrDie();
  EXPECT_GT(r.kmeans_objective, 0.0);
  EXPECT_EQ(r.total_objective, r.kmeans_objective);
}

TEST(KMeansTest, KEqualsNGivesZeroSse) {
  data::Matrix pts(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    pts.At(i, 0) = static_cast<double>(i) * 5;
    pts.At(i, 1) = static_cast<double>(i) * -3;
  }
  KMeansOptions opt;
  opt.k = 4;
  Rng rng(2);
  auto r = RunKMeans(pts, opt, &rng).ValueOrDie();
  EXPECT_NEAR(r.kmeans_objective, 0.0, 1e-12);
  // All clusters non-empty.
  for (size_t s : r.sizes) EXPECT_EQ(s, 1u);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng gen(11);
  data::Matrix pts = testutil::MakeBlobs(1, 50, 3, &gen);
  KMeansOptions opt;
  opt.k = 1;
  Rng rng(4);
  auto r = RunKMeans(pts, opt, &rng).ValueOrDie();
  data::Matrix mean = ComputeCentroids(pts, r.assignment, 1);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(r.centroids.At(0, j), mean.At(0, j), 1e-12);
}

TEST(KMeansPlusPlusTest, CentersAreDataPointsAndDistinct) {
  Rng gen(13);
  data::Matrix pts = testutil::MakeBlobs(5, 20, 2, &gen);
  Rng rng(6);
  auto centers = KMeansPlusPlusCenters(pts, 5, &rng).ValueOrDie();
  EXPECT_EQ(centers.rows(), 5u);
  // Each center equals some data row.
  for (size_t c = 0; c < 5; ++c) {
    bool found = false;
    for (size_t i = 0; i < pts.rows() && !found; ++i) {
      found = data::SquaredDistance(centers.Row(c), pts.Row(i), 2) == 0.0;
    }
    EXPECT_TRUE(found) << "center " << c;
  }
}

TEST(KMeansPlusPlusTest, SpreadsAcrossBlobs) {
  Rng gen(17);
  data::Matrix pts = testutil::MakeBlobs(4, 30, 3, &gen);
  Rng rng(8);
  auto centers = KMeansPlusPlusCenters(pts, 4, &rng).ValueOrDie();
  // D^2 seeding is probabilistic; it may occasionally double up inside one
  // blob, but it must cover at least 3 of the 4 well-separated blobs (a
  // uniform draw would frequently cover only 2).
  std::set<size_t> blobs_hit;
  for (size_t c = 0; c < 4; ++c) {
    size_t nearest_point = 0;
    double best = 1e300;
    for (size_t i = 0; i < pts.rows(); ++i) {
      const double d = data::SquaredDistance(centers.Row(c), pts.Row(i), 3);
      if (d < best) {
        best = d;
        nearest_point = i;
      }
    }
    blobs_hit.insert(nearest_point / 30);
  }
  EXPECT_GE(blobs_hit.size(), 3u);
}

TEST(AssignToNearestTest, CountsChanges) {
  data::Matrix pts(3, 1);
  pts.At(0, 0) = 0;
  pts.At(1, 0) = 10;
  pts.At(2, 0) = 11;
  data::Matrix centers(2, 1);
  centers.At(0, 0) = 0;
  centers.At(1, 0) = 10;
  Assignment a;
  size_t changes = AssignToNearest(pts, centers, &a);
  EXPECT_EQ(changes, 3u);  // Fresh assignment counts all rows.
  EXPECT_EQ(a, (Assignment{0, 1, 1}));
  changes = AssignToNearest(pts, centers, &a);
  EXPECT_EQ(changes, 0u);
}

TEST(MakeInitialAssignmentTest, AllStrategiesProduceValidAssignments) {
  Rng gen(19);
  data::Matrix pts = testutil::MakeBlobs(3, 15, 2, &gen);
  for (KMeansInit init : {KMeansInit::kKMeansPlusPlus, KMeansInit::kRandomAssignment,
                          KMeansInit::kRandomCenters}) {
    Rng rng(10);
    auto a = MakeInitialAssignment(pts, 3, init, &rng);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(ValidateAssignment(a.ValueOrDie(), pts.rows(), 3).ok());
  }
}

TEST(KMeansTest, LloydNeverIncreasesSse) {
  // Track SSE across iterations by re-running with growing max_iterations.
  Rng gen(23);
  data::Matrix pts = testutil::MakeBlobs(3, 30, 3, &gen, /*spread=*/1.5);
  double prev = -1.0;
  for (int iters = 1; iters <= 6; ++iters) {
    KMeansOptions opt;
    opt.k = 3;
    opt.max_iterations = iters;
    opt.init = KMeansInit::kRandomAssignment;
    Rng rng(31);
    auto r = RunKMeans(pts, opt, &rng).ValueOrDie();
    if (prev >= 0) {
      EXPECT_LE(r.kmeans_objective, prev + 1e-9);
    }
    prev = r.kmeans_objective;
  }
}

class KMeansKSweep : public ::testing::TestWithParam<int> {};

TEST_P(KMeansKSweep, MoreClustersNeverHurtObjective) {
  const int k = GetParam();
  Rng gen(29);
  data::Matrix pts = testutil::MakeBlobs(4, 25, 3, &gen, /*spread=*/1.0);
  KMeansOptions opt;
  opt.k = k;
  Rng rng(41);
  auto r = RunKMeans(pts, opt, &rng).ValueOrDie();
  ASSERT_TRUE(ValidateAssignment(r.assignment, pts.rows(), k).ok());
  EXPECT_GE(r.kmeans_objective, 0.0);
  // SSE at k must be no worse than a single cluster's SSE.
  KMeansOptions one;
  one.k = 1;
  Rng rng1(41);
  auto single = RunKMeans(pts, one, &rng1).ValueOrDie();
  EXPECT_LE(r.kmeans_objective, single.kmeans_objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace cluster
}  // namespace fairkm
