#include "cluster/fairlet.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fairkm {
namespace cluster {
namespace {

struct World {
  data::Matrix points;
  data::CategoricalSensitive attr;
};

World MakeWorld(uint64_t seed, size_t minority, size_t majority) {
  Rng rng(seed);
  World w;
  const size_t n = minority + majority;
  w.points = data::Matrix(n, 2);
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    const bool is_minority = i < minority;
    codes[i] = is_minority ? 0 : 1;
    // Two spatial blobs uncorrelated with the attribute.
    const double cx = (i % 2 == 0) ? 0.0 : 6.0;
    w.points.At(i, 0) = cx + rng.Normal(0, 0.5);
    w.points.At(i, 1) = rng.Normal(0, 0.5);
  }
  w.attr = testutil::MakeCategorical(codes, 2, "color");
  return w;
}

TEST(FairletTest, ValidatesInputs) {
  World w = MakeWorld(1, 10, 20);
  FairletOptions opt;
  Rng rng(1);
  EXPECT_FALSE(RunFairletClustering(w.points, w.attr, opt, nullptr).ok());

  auto tri = testutil::MakeCategorical({0, 1, 2, 0}, 3);
  data::Matrix four(4, 2);
  EXPECT_FALSE(RunFairletClustering(four, tri, opt, &rng).ok());

  auto mono = testutil::MakeCategorical({0, 0, 0, 0}, 2);
  EXPECT_FALSE(RunFairletClustering(four, mono, opt, &rng).ok());

  // k larger than the number of fairlets (minority count).
  World tiny = MakeWorld(2, 3, 9);
  opt.k = 5;
  EXPECT_FALSE(RunFairletClustering(tiny.points, tiny.attr, opt, &rng).ok());
}

TEST(FairletTest, FairletsPartitionThePoints) {
  World w = MakeWorld(3, 12, 36);
  FairletOptions opt;
  opt.k = 3;
  Rng rng(3);
  auto r = RunFairletClustering(w.points, w.attr, opt, &rng).ValueOrDie();
  EXPECT_EQ(r.fairlets.size(), 12u);
  std::vector<int> seen(w.points.rows(), 0);
  for (const auto& f : r.fairlets) {
    for (size_t idx : f) ++seen[idx];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(FairletTest, FairletCompositionRespectsCapacities) {
  // 12 minority, 36 majority => every fairlet has exactly 1 minority and
  // exactly 3 majority points (R/B = 3 exactly).
  World w = MakeWorld(5, 12, 36);
  FairletOptions opt;
  opt.k = 3;
  Rng rng(5);
  auto r = RunFairletClustering(w.points, w.attr, opt, &rng).ValueOrDie();
  for (const auto& f : r.fairlets) {
    EXPECT_EQ(f.size(), 4u);
    EXPECT_EQ(w.attr.codes[f[0]], 0);  // Anchor is the minority point.
    for (size_t i = 1; i < f.size(); ++i) EXPECT_EQ(w.attr.codes[f[i]], 1);
  }
}

TEST(FairletTest, UnevenRatioUsesFloorCeilCapacities) {
  // 10 minority, 25 majority: fairlets carry 2 or 3 majority points.
  World w = MakeWorld(7, 10, 25);
  FairletOptions opt;
  opt.k = 2;
  Rng rng(7);
  auto r = RunFairletClustering(w.points, w.attr, opt, &rng).ValueOrDie();
  for (const auto& f : r.fairlets) {
    EXPECT_GE(f.size(), 3u);  // 1 minority + >= 2 majority.
    EXPECT_LE(f.size(), 4u);  // 1 minority + <= 3 majority.
  }
}

TEST(FairletTest, ClusterBalanceGuarantee) {
  World w = MakeWorld(9, 15, 45);
  FairletOptions opt;
  opt.k = 4;
  Rng rng(9);
  auto r = RunFairletClustering(w.points, w.attr, opt, &rng).ValueOrDie();
  // Every cluster is a union of (1 minority : 3 majority) fairlets, so
  // balance is exactly 1/3.
  EXPECT_NEAR(r.min_cluster_balance, 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(ValidateAssignment(r.assignment, w.points.rows(), 4).ok());
}

TEST(FairletTest, MembersInheritTheirFairletCluster) {
  World w = MakeWorld(11, 10, 30);
  FairletOptions opt;
  opt.k = 3;
  Rng rng(11);
  auto r = RunFairletClustering(w.points, w.attr, opt, &rng).ValueOrDie();
  for (const auto& f : r.fairlets) {
    for (size_t idx : f) {
      EXPECT_EQ(r.assignment[idx], r.assignment[f[0]]);
    }
  }
}

TEST(FairletTest, LpRefinementNeverWorsensCost) {
  World w = MakeWorld(13, 8, 24);
  FairletOptions greedy_opt;
  greedy_opt.k = 2;
  greedy_opt.refine_with_lp = false;
  Rng r1(13);
  auto greedy = RunFairletClustering(w.points, w.attr, greedy_opt, &r1).ValueOrDie();

  FairletOptions lp_opt = greedy_opt;
  lp_opt.refine_with_lp = true;
  Rng r2(13);
  auto refined = RunFairletClustering(w.points, w.attr, lp_opt, &r2).ValueOrDie();
  EXPECT_LE(refined.decomposition_cost, greedy.decomposition_cost + 1e-9);
}

TEST(BalanceHelperTest, ComputesMinRatio) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 1, 1}, 2);
  EXPECT_NEAR(Balance(attr, {0, 1, 2, 3, 4}), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(Balance(attr, {0, 1}), 0.0);  // Single-valued subset.
}

}  // namespace
}  // namespace cluster
}  // namespace fairkm
