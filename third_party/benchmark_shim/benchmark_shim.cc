#include "benchmark/benchmark.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <regex>

namespace benchmark {
namespace {

struct ShimConfig {
  std::string filter;
  std::string out_path;
  std::string out_format = "json";
  double min_time = 0.2;
  bool list_only = false;
};

ShimConfig& Config() {
  static ShimConfig config;
  return config;
}

std::vector<std::unique_ptr<Benchmark>>& Registry() {
  static std::vector<std::unique_ptr<Benchmark>> registry;
  return registry;
}

double NowRealSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double NowCpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

const char* UnitSuffix(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

double UnitScale(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

struct RunResult {
  std::string name;
  int64_t iterations = 0;
  double real_time = 0.0;  ///< Per-iteration, in the variant's unit.
  double cpu_time = 0.0;
  const char* time_unit = "ns";
  std::map<std::string, double> counters;  ///< From the final timed run.
};

std::string VariantName(const Benchmark& bench, const std::vector<int64_t>& args) {
  std::string name = bench.name();
  for (int64_t a : args) name += "/" + std::to_string(a);
  return name;
}

RunResult RunVariant(const Benchmark& bench, const std::vector<int64_t>& args) {
  int64_t iterations = bench.fixed_iterations() > 0 ? bench.fixed_iterations() : 1;
  double real = 0.0, cpu = 0.0;
  std::map<std::string, double> counters;
  for (;;) {
    State state(iterations, args);
    bench.fn()(state);
    real = state.elapsed_real_seconds();
    cpu = state.elapsed_cpu_seconds();
    counters = state.counters;
    if (bench.fixed_iterations() > 0 || real >= Config().min_time ||
        iterations >= (int64_t{1} << 40)) {
      break;
    }
    // Geometric growth toward the time target, like the real runner: guess
    // the needed count from the measured rate, overshoot a little, and never
    // grow by more than 10x at once.
    double multiplier = real > 1e-9 ? Config().min_time / real * 1.4 : 10.0;
    if (multiplier > 10.0) multiplier = 10.0;
    if (multiplier < 1.5) multiplier = 1.5;
    iterations = static_cast<int64_t>(static_cast<double>(iterations) * multiplier) + 1;
  }
  RunResult result;
  result.name = VariantName(bench, args);
  result.iterations = iterations;
  const double scale = UnitScale(bench.unit());
  result.real_time = real / static_cast<double>(iterations) * scale;
  result.cpu_time = cpu / static_cast<double>(iterations) * scale;
  result.time_unit = UnitSuffix(bench.unit());
  result.counters = std::move(counters);
  return result;
}

void WriteJson(const std::vector<RunResult>& results, std::FILE* out) {
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"library_build_type\": \"fairkm-benchmark-shim\"\n");
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": %lld,\n"
                 "      \"real_time\": %.6g,\n"
                 "      \"cpu_time\": %.6g,\n",
                 r.name.c_str(), r.name.c_str(),
                 static_cast<long long>(r.iterations), r.real_time, r.cpu_time);
    // User counters, as top-level numeric fields like the real library.
    for (const auto& [name, value] : r.counters) {
      std::fprintf(out, "      \"%s\": %.6g,\n", name.c_str(), value);
    }
    std::fprintf(out,
                 "      \"time_unit\": \"%s\"\n"
                 "    }%s\n",
                 r.time_unit, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

void State::StartTimer() {
  real_start_ = NowRealSeconds();
  cpu_start_ = NowCpuSeconds();
}

void State::StopTimer() {
  real_elapsed_ = NowRealSeconds() - real_start_;
  cpu_elapsed_ = NowCpuSeconds() - cpu_start_;
}

Benchmark* RegisterBenchmark(const char* name, Function fn) {
  Registry().push_back(std::make_unique<Benchmark>(name, fn));
  return Registry().back().get();
}

void Initialize(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      return std::strncmp(arg, flag, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value_of("--benchmark_filter=")) {
      Config().filter = v;
    } else if (const char* v = value_of("--benchmark_out=")) {
      Config().out_path = v;
    } else if (const char* v = value_of("--benchmark_out_format=")) {
      Config().out_format = v;
    } else if (const char* v = value_of("--benchmark_min_time=")) {
      Config().min_time = std::strtod(v, nullptr);  // trailing "s"/"x" ignored
    } else if (std::strcmp(arg, "--benchmark_list_tests") == 0 ||
               std::strcmp(arg, "--benchmark_list_tests=true") == 0) {
      Config().list_only = true;
    } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
      std::fprintf(stderr, "benchmark-shim: ignoring unsupported flag %s\n", arg);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

size_t RunSpecifiedBenchmarks() {
  std::regex filter;
  const bool has_filter = !Config().filter.empty();
  if (has_filter) {
    try {
      filter = std::regex(Config().filter);
    } catch (const std::regex_error& e) {
      std::fprintf(stderr, "benchmark-shim: could not compile --benchmark_filter "
                           "'%s': %s\n", Config().filter.c_str(), e.what());
      std::exit(1);
    }
  }

  std::vector<RunResult> results;
  std::fprintf(stderr, "benchmark-shim: vendored fallback runner (google-benchmark "
                       "not found at configure time)\n");
  for (const auto& bench : Registry()) {
    std::vector<std::vector<int64_t>> variants = bench->args_sets();
    if (variants.empty()) variants.push_back({});
    for (const auto& args : variants) {
      const std::string name = VariantName(*bench, args);
      if (has_filter && !std::regex_search(name, filter)) continue;
      if (Config().list_only) {
        std::printf("%s\n", name.c_str());
        continue;
      }
      RunResult result = RunVariant(*bench, args);
      std::printf("%-48s %12.3f %s %12.3f %s %12lld\n", result.name.c_str(),
                  result.real_time, result.time_unit, result.cpu_time,
                  result.time_unit, static_cast<long long>(result.iterations));
      std::fflush(stdout);
      results.push_back(std::move(result));
    }
  }
  if (!Config().list_only && !Config().out_path.empty()) {
    if (Config().out_format != "json") {
      std::fprintf(stderr, "benchmark-shim: only json --benchmark_out_format is "
                           "supported; writing json\n");
    }
    std::FILE* out = std::fopen(Config().out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "benchmark-shim: cannot open %s\n",
                   Config().out_path.c_str());
    } else {
      WriteJson(results, out);
      std::fclose(out);
    }
  }
  return results.size();
}

}  // namespace benchmark
