// Synthetic Adult (1994 Census Income) dataset generator.
//
// The paper evaluates on the UCI Adult dataset, which is not available in
// this offline environment. This generator is the documented substitution
// (DESIGN.md §3.1): it produces records whose sensitive attributes have the
// exact domain cardinalities of the paper's Table 3 —
//   marital status (7), relationship status (6), race (5), gender (2),
//   native country (41)
// — with realistically skewed marginals (e.g. ~87% majority race, ~90% single
// native country), and whose 8 numeric task attributes are deliberately
// correlated with the sensitive groups through a latent socioeconomic-profile
// mixture. That correlation is the precondition of the study: it makes
// S-blind K-Means produce demographically skewed clusters.
//
// Income (">50K" / "<=50K") is assigned by ranking a socioeconomic score so
// that exactly `target_positive` rows are positive; undersampling to income
// parity (paper §5.1) then yields exactly 2 * target_positive rows — 15,682
// with the defaults, matching the paper.

#ifndef FAIRKM_DATA_ADULT_GENERATOR_H_
#define FAIRKM_DATA_ADULT_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace fairkm {
namespace data {

/// \brief Generation knobs for the synthetic Adult dataset.
struct AdultOptions {
  uint64_t seed = 42;
  /// Rows before undersampling (paper: 32,561).
  size_t num_rows = 32561;
  /// Rows labelled ">50K" (paper's parity undersampling yields 15,682 rows,
  /// i.e. 7,841 positives).
  size_t target_positive = 7841;
};

/// \brief Names of the 5 sensitive attributes (paper's S for Adult).
const std::vector<std::string>& AdultSensitiveNames();

/// \brief Names of the 8 numeric task attributes (paper's N for Adult).
const std::vector<std::string>& AdultTaskNames();

/// \brief Generates the full dataset (num_rows records, income included).
Result<Dataset> GenerateAdult(const AdultOptions& options);

/// \brief Generates and undersamples to income parity: 2 * target_positive
/// rows (15,682 with defaults), shuffled.
Result<Dataset> GenerateAdultParity(const AdultOptions& options);

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_ADULT_GENERATOR_H_
