#include "lp/model.h"

#include <map>

namespace fairkm {
namespace lp {

int Model::AddVariable(double cost, double upper, std::string name) {
  costs_.push_back(cost);
  uppers_.push_back(upper);
  if (name.empty()) name = "x" + std::to_string(costs_.size() - 1);
  names_.push_back(std::move(name));
  return static_cast<int>(costs_.size()) - 1;
}

Status Model::AddConstraint(std::vector<std::pair<int, double>> terms, Sense sense,
                            double rhs, std::string name) {
  // Merge duplicate indices so the solver sees each column once per row.
  std::map<int, double> merged;
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_variables()) {
      return Status::InvalidArgument("constraint references unknown variable index " +
                                     std::to_string(var));
    }
    merged[var] += coeff;
  }
  Constraint c;
  c.terms.assign(merged.begin(), merged.end());
  c.sense = sense;
  c.rhs = rhs;
  c.name = name.empty() ? ("r" + std::to_string(constraints_.size())) : std::move(name);
  constraints_.push_back(std::move(c));
  return Status::OK();
}

}  // namespace lp
}  // namespace fairkm
