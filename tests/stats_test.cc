#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace fairkm {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of the classic sequence: population var is 4, sample
  // variance is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(3.0, 2.0);
    whole.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // No-op.
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // Copies.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  // Welford should handle values with a huge common offset.
  for (int i = 0; i < 1000; ++i) rs.Add(1e9 + (i % 2));
  EXPECT_NEAR(rs.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(rs.variance(), 0.25025, 1e-3);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StdDevTest, Basics) {
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(KahanSumTest, CompensatesSmallTerms) {
  std::vector<double> values;
  values.push_back(1.0);
  for (int i = 0; i < 1000000; ++i) values.push_back(1e-16);
  // Naive summation would lose the tail entirely.
  EXPECT_NEAR(KahanSum(values), 1.0 + 1e-10, 1e-12);
}

TEST(AlmostEqualTest, AbsoluteAndRelative) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 5e-10));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(AlmostEqual(1e12, 1e12 + 1e6));
}

}  // namespace
}  // namespace fairkm
