#include "cluster/types.h"

#include <gtest/gtest.h>

namespace fairkm {
namespace cluster {
namespace {

data::Matrix SmallPoints() {
  data::Matrix m(4, 2);
  m.At(0, 0) = 0;
  m.At(0, 1) = 0;
  m.At(1, 0) = 2;
  m.At(1, 1) = 0;
  m.At(2, 0) = 10;
  m.At(2, 1) = 10;
  m.At(3, 0) = 12;
  m.At(3, 1) = 10;
  return m;
}

TEST(ValidateAssignmentTest, AcceptsValid) {
  EXPECT_TRUE(ValidateAssignment({0, 1, 1, 0}, 4, 2).ok());
}

TEST(ValidateAssignmentTest, RejectsWrongLength) {
  EXPECT_EQ(ValidateAssignment({0, 1}, 4, 2).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateAssignmentTest, RejectsOutOfRangeIds) {
  EXPECT_EQ(ValidateAssignment({0, 2, 0, 0}, 4, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ValidateAssignment({0, -1, 0, 0}, 4, 2).code(), StatusCode::kOutOfRange);
}

TEST(ClusterSizesTest, CountsPerCluster) {
  EXPECT_EQ(ClusterSizes({0, 1, 1, 0}, 3), (std::vector<size_t>{2, 2, 0}));
}

TEST(GroupByClusterTest, GroupsIndices) {
  auto groups = GroupByCluster({0, 1, 1, 0}, 2);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 3}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{1, 2}));
}

TEST(ComputeCentroidsTest, MeansPerCluster) {
  data::Matrix pts = SmallPoints();
  data::Matrix c = ComputeCentroids(pts, {0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 11.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 10.0);
}

TEST(ComputeCentroidsTest, EmptyClusterIsZero) {
  data::Matrix pts = SmallPoints();
  data::Matrix c = ComputeCentroids(pts, {0, 0, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 0.0);
}

TEST(SumOfSquaredErrorsTest, KnownValue) {
  data::Matrix pts = SmallPoints();
  Assignment a = {0, 0, 1, 1};
  data::Matrix c = ComputeCentroids(pts, a, 2);
  // Each cluster: two points 2 apart along x => 2 * 1^2 per cluster.
  EXPECT_DOUBLE_EQ(SumOfSquaredErrors(pts, a, c), 4.0);
}

TEST(FinalizeResultTest, FillsDerivedFields) {
  data::Matrix pts = SmallPoints();
  ClusteringResult r;
  r.assignment = {0, 0, 1, 1};
  FinalizeResult(pts, 2, &r);
  EXPECT_EQ(r.sizes, (std::vector<size_t>{2, 2}));
  EXPECT_DOUBLE_EQ(r.kmeans_objective, 4.0);
  EXPECT_EQ(r.centroids.rows(), 2u);
}

}  // namespace
}  // namespace cluster
}  // namespace fairkm
