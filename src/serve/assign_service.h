// AssignService — the concurrent front door of the serving tier.
//
// One writer (a training loop) publishes immutable ModelSnapshots; many
// reader threads call Assign concurrently. The service
//
//   * holds the current snapshot in a shared_ptr swapped atomically
//     (std::atomic_load/atomic_store), so every request scores against one
//     stable model generation end to end, regardless of publishes racing in;
//   * bounds concurrency with a counting-semaphore admission gate —
//     at most max_concurrency requests score at once; waiters queue up to
//     max_queue_depth deep and are SHED with kUnavailable beyond that (or
//     once their queue_timeout/deadline passes) instead of blocking forever
//     — graceful degradation under overload, backpressure under load;
//   * honors a per-request deadline (AssignRequestOptions) covering queue
//     wait plus scoring, checked cooperatively between batches: a request
//     that runs out of time returns kDeadlineExceeded promptly and its
//     partially scored points are accounted separately;
//   * supports clean teardown: Shutdown() stops admission (queued and new
//     requests get kUnavailable; in-flight requests finish), Drain() waits
//     for quiescence;
//   * splits each request into batches of at most max_batch_points rows and
//     scores them through the kernel-backed serve::AssignRows fast path with
//     a per-thread reusable scratch (allocation-free steady state);
//   * counts everything — requests, points, batches, rejected requests,
//     scoring wall time, batch-size shape, publishes, snapshot age — into a
//     ServeMetrics struct (fairkm_cli --serve-bench prints it).
//
// Thread-safe throughout: Publish, Assign and Metrics may be called from any
// threads concurrently. The solver feeding Publish stays single-writer on
// its own thread (see model_snapshot.h).

#ifndef FAIRKM_SERVE_ASSIGN_SERVICE_H_
#define FAIRKM_SERVE_ASSIGN_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cluster/types.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "serve/model_snapshot.h"

namespace fairkm {
namespace serve {

/// \brief Service knobs.
struct AssignServiceOptions {
  /// Per-request batching granularity: requests are scored in chunks of at
  /// most this many points (metrics count each chunk as one batch).
  size_t max_batch_points = 512;
  /// Maximum requests scoring concurrently; further callers queue at the
  /// admission gate. 0 = number of hardware threads.
  int max_concurrency = 0;
  /// Maximum requests waiting at the gate; arrivals beyond this are shed
  /// immediately with kUnavailable (bounded memory and bounded queueing
  /// delay instead of an unbounded pile-up).
  size_t max_queue_depth = 1024;
  /// Entries in the preprocessed-request LRU cache: a request whose batch
  /// hash (point bytes + sensitive values) matches a previous request scored
  /// under the SAME snapshot version returns the cached assignment without
  /// taking a scoring slot. 0 (the default) disables the cache entirely —
  /// identical behavior to before the cache existed. The cache is cleared on
  /// every Publish, and entries carry the snapshot version they were scored
  /// under, so a republish can never serve a stale answer; publishers should
  /// use monotonically increasing versions (every publish path in this repo
  /// does).
  size_t request_cache_capacity = 0;
};

/// \brief Per-request degradation knobs. Negative fields mean "unbounded".
///
/// Time-unit convention (repo-wide, same as core::RunBudget.max_seconds):
/// every duration in a public option struct is wall-clock seconds as a
/// `double`, named `*_seconds`. Millisecond-flavoured surfaces (the CLI's
/// `--*-ms` flags) convert at parse time; no struct field is ever in ms.
struct AssignRequestOptions {
  /// Total wall-clock budget of the request, INCLUDING queue wait, checked
  /// cooperatively between scoring batches. Exceeding it returns
  /// kDeadlineExceeded (partially scored points are dropped and counted in
  /// ServeMetrics.deadline_partial_points).
  double deadline_seconds = -1.0;
  /// Maximum time the request may sit in the admission queue before being
  /// shed with kUnavailable (retry-later signal, distinct from the
  /// deadline: the work never started).
  double queue_timeout_seconds = -1.0;
};

/// \brief Point-in-time counters of an AssignService.
struct ServeMetrics {
  uint64_t requests = 0;        ///< Completed Assign calls (ok or error).
  uint64_t errors = 0;          ///< Assign calls that returned a non-OK status.
  uint64_t points = 0;          ///< Points scored by successful requests.
  uint64_t batches = 0;         ///< Scoring chunks across all requests.
  double busy_seconds = 0.0;    ///< Wall time spent inside scoring.
  double points_per_second = 0.0;  ///< points / busy_seconds (0 if no work).
  double avg_batch_points = 0.0;   ///< points / batches (0 if no work).
  uint64_t max_batch_points = 0;   ///< Largest chunk scored so far.
  uint64_t peak_in_flight = 0;     ///< Max concurrent requests observed.
  uint64_t snapshots_published = 0;
  /// Seconds since the current snapshot was published (-1 with no model).
  double snapshot_age_seconds = -1.0;

  // --- Degradation counters (all error cases also count in `errors`).
  uint64_t not_ready = 0;          ///< Assign calls before the first Publish.
  uint64_t shed_queue_full = 0;    ///< Shed at arrival: queue at capacity.
  uint64_t shed_queue_timeout = 0; ///< Shed while queued: queue_timeout hit.
  uint64_t deadline_exceeded = 0;  ///< Deadline hit (queued or scoring).
  /// Points already scored by requests that then hit their deadline (the
  /// partial work a kDeadlineExceeded reply threw away).
  uint64_t deadline_partial_points = 0;
  uint64_t queue_depth = 0;        ///< Requests waiting at the gate now.
  uint64_t peak_queue_depth = 0;   ///< Max queue depth observed.

  // --- Request cache (request_cache_capacity > 0; both stay 0 otherwise).
  uint64_t cache_hits = 0;    ///< Requests answered from the LRU cache.
  uint64_t cache_misses = 0;  ///< Cache lookups that had to score.
};

/// \brief Bounded-concurrency assignment service over published snapshots.
class AssignService {
 public:
  explicit AssignService(const AssignServiceOptions& options = {});

  /// \brief Atomically swaps in a new model generation. Requests already
  /// scoring keep their snapshot; new requests see this one.
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// \brief The currently published model generation (null before the first
  /// Publish).
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// \brief Scores one request against the current snapshot (fairness term
  /// included iff `sensitive` is non-null — same contract as
  /// serve::AssignBatch). Queues while max_concurrency requests are already
  /// scoring; `request` bounds how long the call may queue
  /// (kUnavailable past queue_timeout_seconds or when the queue is full at
  /// arrival) and run (kDeadlineExceeded past deadline_seconds, checked
  /// between scoring batches). Before the first Publish every call returns
  /// kUnavailable — a retryable not-ready signal, never a hang.
  Result<cluster::Assignment> Assign(
      const data::Matrix& points,
      const data::SensitiveView* sensitive = nullptr,
      const AssignRequestOptions& request = {});

  /// \brief Stops admission permanently: queued requests wake with
  /// kUnavailable, later Assign and Publish calls are refused/ignored.
  /// In-flight requests finish normally. Idempotent, any thread.
  void Shutdown();

  /// \brief True once Shutdown() has been called.
  bool is_shutdown() const;

  /// \brief Blocks until no request is queued or scoring (use after
  /// Shutdown for a clean teardown, or between load phases in tests).
  /// `timeout_seconds` < 0 waits forever; otherwise kDeadlineExceeded when
  /// the service is still busy at the timeout.
  Status Drain(double timeout_seconds = -1.0);

  /// \brief Snapshot of the counters.
  ServeMetrics Metrics() const;

 private:
  using Clock = std::chrono::steady_clock;

  // Admission gate: returns once a scoring slot is held, or with the shed /
  // deadline status. Counts the specific shed counter; the caller folds the
  // status into requests/errors.
  Status AcquireSlot(Clock::time_point deadline, Clock::time_point queue_deadline);
  void ReleaseSlot();

  const size_t max_batch_points_;
  const uint64_t max_concurrency_;
  const uint64_t max_queue_depth_;

  // Current model generation; accessed only through std::atomic_load/store.
  std::shared_ptr<const ModelSnapshot> snapshot_;

  mutable std::mutex mu_;  // Guards the gate + every counter below.
  std::condition_variable slot_free_;
  std::condition_variable idle_;  // Signalled when queued_ + in_flight_ == 0.
  bool shutdown_ = false;
  uint64_t in_flight_ = 0;
  uint64_t queued_ = 0;
  uint64_t peak_in_flight_ = 0;
  uint64_t peak_queue_depth_ = 0;
  uint64_t requests_ = 0;
  uint64_t errors_ = 0;
  uint64_t points_ = 0;
  uint64_t batches_ = 0;
  double busy_seconds_ = 0.0;
  uint64_t max_batch_ = 0;
  uint64_t publishes_ = 0;
  uint64_t not_ready_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_queue_timeout_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t deadline_partial_points_ = 0;
  Clock::time_point publish_time_{};

  // Preprocessed-request LRU cache (under mu_; empty when disabled). The
  // list keeps most-recently-used entries at the front; the index maps the
  // request-batch hash to its list node. Cleared on every Publish.
  struct CacheEntry {
    uint64_t key = 0;
    uint64_t version = 0;  // Snapshot version the result was scored under.
    cluster::Assignment result;
  };
  const size_t cache_capacity_;
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_ASSIGN_SERVICE_H_
