// Deterministic fault injection for robustness tests.
//
// Production code marks the operations that can fail in the wild — file
// writes, fsyncs, renames, scoring batches — with named fault points. A test
// (or the FAIRKM_FAULT environment variable) arms a point with a FaultSpec;
// the next time execution reaches it, the fault fires: an injected error
// Status, a short write (only a prefix of the payload reaches the file), a
// torn rename (the destination ends up with a truncated image, as a crash
// mid-replace on a non-atomic filesystem would leave), or a wall-clock delay
// (to force deadline misses without real load).
//
// Cost when disarmed: every fault point is a single relaxed atomic load and
// a never-taken branch — no lock, no map lookup, no allocation — so the hot
// paths can keep their points compiled in unconditionally.
//
//   Status Save(...) {
//     FAIRKM_FAULT_POINT("checkpoint.write");   // error/delay injection
//     ...
//   }
//
// Richer faults (short writes, torn renames) are consumed by the I/O layer
// through fault::Hit(), which reports the full action to apply.
//
// Environment arming (processes under test, CI smoke runs):
//   FAIRKM_FAULT="checkpoint.write=error;serve.batch=delay,seconds=0.002"
// Each ';'-separated clause is point=kind[,key=value...] with kinds
//   error  [,code=io|dataloss|unavailable|internal|exhausted] -> injected Status
//   short  [,keep=N]       -> keep only the first N payload bytes (default 0)
//   torn   [,keep=N]       -> destination gets first N bytes (default half)
//   delay  [,seconds=X]    -> sleep X seconds, then continue (default 0.001)
//   diskfull               -> typed kResourceExhausted, no payload bytes land
//   kill                   -> SIGKILL the process at the point (kill -9)
// plus the shared keys skip=N (let the first N hits pass) and fires=N
// (disarm after N firings; default unlimited).
//
// Thread-safe throughout; the registry is mutex-protected and only touched
// when at least one point is armed.

#ifndef FAIRKM_COMMON_FAULT_INJECTION_H_
#define FAIRKM_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairkm {
namespace fault {

/// \brief What an armed fault point does when it fires.
enum class Kind {
  kError,       ///< Return an injected error Status.
  kShortWrite,  ///< Truncate the payload before it reaches the file.
  kTornRename,  ///< Replace the rename with a truncated destination image.
  kDelay,       ///< Sleep, then continue normally.
  kDiskFull,    ///< ENOSPC: the write fails with a typed kResourceExhausted
                ///< status after zero payload bytes reach the file.
  kKill,        ///< SIGKILL the process at the fault point (crash harness) —
                ///< no destructors, no atexit, exactly like `kill -9`.
};

/// \brief Arming descriptor for one fault point.
struct FaultSpec {
  Kind kind = Kind::kError;
  /// Injected status for kError (message defaults to naming the point).
  StatusCode code = StatusCode::kIOError;
  std::string message;
  /// Hits that pass through unharmed before the first firing.
  int skip = 0;
  /// Firings before the point disarms itself (-1 = unlimited).
  int max_fires = -1;
  /// kShortWrite / kTornRename: payload bytes that survive. For kTornRename
  /// the sentinel SIZE_MAX means "half of the payload".
  size_t keep_bytes = SIZE_MAX;
  /// kDelay: sleep length.
  double delay_seconds = 0.001;
};

/// \brief The action a fired fault point reports to its caller.
struct FaultAction {
  Kind kind = Kind::kError;
  Status status;            ///< Non-OK for kError.
  size_t keep_bytes = 0;    ///< Resolved byte count for short/torn faults.
  double delay_seconds = 0; ///< For kDelay.
};

namespace internal {
/// Count of armed points; the macro's fast-path guard. Relaxed is enough:
/// arming happens-before the faulted operation in any sane test, and a
/// stale read only delays the first firing by one hit.
extern std::atomic<int> armed_points;
}  // namespace internal

/// \brief True when any fault point is armed (one relaxed load).
inline bool Enabled() {
  return internal::armed_points.load(std::memory_order_relaxed) != 0;
}

/// \brief Arms `point` with `spec` (replacing any previous arming).
void Arm(const std::string& point, FaultSpec spec);

/// \brief Disarms `point` (no-op when not armed).
void Disarm(const std::string& point);

/// \brief Disarms everything and resets hit counters (test teardown).
void DisarmAll();

/// \brief Full check: true when `point` is armed and fires this hit, with
/// the action to apply in `*action`. Counts hits and honors skip/max_fires.
bool Hit(const char* point, FaultAction* action);

/// \brief Times `point` has been reached while armed (skipped or fired).
uint64_t HitCount(const std::string& point);

/// \brief Simple-statement form: for kError returns the injected status; for
/// kDelay sleeps and returns OK; short/torn faults (which need an I/O layer
/// to interpret them) also surface as their injected-error status so a
/// mis-placed arming can never be silently ignored. OK when disarmed.
Status Check(const char* point);

/// \brief Parses a FAIRKM_FAULT-style spec string and arms every clause.
/// Returns kInvalidArgument (arming nothing further) on a malformed clause.
Status ArmFromString(const std::string& env_value);

}  // namespace fault
}  // namespace fairkm

/// \brief Named fault point: in a Status-returning function, injects the
/// armed fault for `point` (error Status propagates to the caller, delay
/// sleeps in place). One relaxed atomic load when nothing is armed.
#define FAIRKM_FAULT_POINT(point)                                  \
  do {                                                             \
    if (::fairkm::fault::Enabled()) {                              \
      ::fairkm::Status _fault_st = ::fairkm::fault::Check(point);  \
      if (!_fault_st.ok()) return _fault_st;                       \
    }                                                              \
  } while (false)

#endif  // FAIRKM_COMMON_FAULT_INJECTION_H_
