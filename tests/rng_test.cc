#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace fairkm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  uint64_t x = rng.Next();
  uint64_t y = rng.Next();
  EXPECT_NE(x, y);  // Not stuck.
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(uint64_t{13}), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{7}));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverSampled) {
  Rng rng(33);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Probability of identity is astronomically small.
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(51);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(53);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(61);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  Rng b(61);
  b.Next();  // Fork consumed one parent draw.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, UniformIntUnbiasedAcrossBounds) {
  const uint64_t bound = GetParam();
  Rng rng(bound * 977 + 1);
  std::vector<int> counts(bound, 0);
  const int n = 20000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v] / expected, 1.0, 0.05) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep, ::testing::Values(2, 3, 5, 7, 16));

}  // namespace
}  // namespace fairkm
