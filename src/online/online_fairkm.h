// OnlineFairKM — incremental admit/retire over a live FairKM session with a
// drift-triggered bounded re-sweep loop.
//
// The paper's Algorithm 1 is a batch trainer, but every aggregate the sweep
// maintains (cluster counts/sums/norms, the fairness moment tables, the
// pruner bounds) already updates incrementally per move. This engine turns
// that into a long-lived service:
//
//   * Admit(points, sensitive): each admitted point is placed by its exact
//     Eq. 1 insertion cost — |C|/(|C|+1) d(x, mu_C)^2 plus lambda times the
//     fairness insertion delta (FairKMState::DeltaFairnessInsertion) —
//     scored LIVE, so the second point of a batch prices against the
//     aggregates the first one shifted. The point lands in a growable `mem`
//     PointStore (a read-only mmap store refuses with an actionable
//     kInvalidArgument), the state adopts it via AdmitAppended, and the
//     caller gets back a stable uint64 id.
//   * Retire(ids): stable ids resolve through a row map maintained across
//     the swap-with-last removals of PointStore::SwapRemoveRow, so retiring
//     never rebuilds state — aggregates are decremented (RetireSwapped) and
//     the last row slides into the hole.
//   * After every admit/retire batch the engine re-derives the dataset-level
//     fairness distribution (fractions/means are n-dependent), refreshes the
//     moment tables and pruner bounds, and re-synchronizes the solver's
//     sweep machinery with the new row count (SyncStoreGrowth).
//   * Drift monitor: the maintained per-point objective is compared against
//     the baseline recorded at the last (re-)train. A regression past
//     DriftPolicy::regression_tolerance — or a non-finite reading, injected
//     in tests through the shared "supervisor.objective" fault point —
//     triggers exactly one bounded re-sweep: a canonical Flush() rebuild,
//     then at most resweep_max_sweeps Algorithm-1 sweeps, then a republish.
//     This is the core::SupervisedRunner watchdog loop with "roll back"
//     swapped for "re-optimize in place".
//   * Republish: each re-sweep (and the initial train, and a recovery)
//     freezes a serve::ModelSnapshot with a monotonically increasing
//     generation and hands it to the optional AssignService via its atomic
//     snapshot swap — writers admit while readers assign, and a reader
//     never observes a torn generation.
//   * Durability: Checkpoint() persists the engine (rows, ids, sensitive
//     view, stats) in a CRC-framed section file ("FKOL") next to a PR 7
//     solver checkpoint ("FKMC", bit-exact float state); Recover() restores
//     both, falling back to a canonical warm-start rebuild when the solver
//     file is lost or torn.
//
// Consistency anchor (tested property): after ANY admit/retire sequence
// followed by Flush(), the fairness moments, counts, and objective are
// bit-identical to a from-scratch FairKMState::Create over the surviving
// points in engine row order — the incremental path can drift numerically
// (floating-point summation order), the flushed path cannot.
//
// Threading: one internal mutex serializes every mutating call (Admit /
// Retire / Flush / TriggerResweep / Checkpoint) and the stats reads; any
// thread may call them. Readers go through the AssignService, which never
// touches the live solver. The engine owns its point store and sensitive
// view, so it is non-movable; Create/Recover return it on the heap.

#ifndef FAIRKM_ONLINE_ONLINE_FAIRKM_H_
#define FAIRKM_ONLINE_ONLINE_FAIRKM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"
#include "serve/assign_service.h"

namespace fairkm {
namespace online {

/// \brief When and how hard the drift monitor reacts.
struct DriftPolicy {
  /// Relative per-point objective regression (against the baseline recorded
  /// at the last train/re-sweep) that triggers a bounded re-sweep. The
  /// comparison is `per_point > baseline + tolerance * max(1, |baseline|)`;
  /// a non-finite objective always triggers (NaN fails every comparison),
  /// mirroring the supervisor's non-finite rollback rule.
  double regression_tolerance = 0.05;
  /// Algorithm-1 sweeps one drift response may spend (RunBudget.max_sweeps).
  int resweep_max_sweeps = 2;
};

/// \brief Engine construction knobs.
struct OnlineOptions {
  /// Solver configuration of the owned session (k, lambda, sweep mode,
  /// mini-batching, pruning — every FairKMOptions knob applies).
  core::FairKMOptions solver;
  DriftPolicy drift;
  /// When non-empty, every re-sweep (and explicit Checkpoint() call) writes
  /// a durable engine + solver checkpoint pair here for Recover().
  std::string checkpoint_dir;
};

/// \brief Point-in-time counters of an engine.
struct OnlineStats {
  uint64_t admitted = 0;       ///< Points admitted over the engine lifetime.
  uint64_t retired = 0;        ///< Points retired over the engine lifetime.
  uint64_t resweeps = 0;       ///< Drift-triggered (or forced) re-sweeps.
  uint64_t flushes = 0;        ///< Canonical rebuilds (Flush + re-sweep prep).
  uint64_t generation = 0;     ///< Latest published snapshot generation.
  size_t live_rows = 0;        ///< Surviving points right now.
  double last_objective = 0.0; ///< Cached Eq. 1 objective right now.
  double baseline_per_point = 0.0;  ///< Drift baseline (objective / n).
};

/// \brief Live admit/retire engine over an owned FairKM session.
class OnlineFairKM {
 public:
  /// \brief Trains an initial model over `initial_points` (solver Init from
  /// `seed` + Run to convergence under the solver options), assigns stable
  /// ids 1..n to the initial rows, publishes generation 1 to `service` (may
  /// be null — the engine then only tracks generations), and, when a
  /// checkpoint_dir is configured, writes the first durable checkpoint.
  static Result<std::unique_ptr<OnlineFairKM>> Create(
      const data::Matrix& initial_points,
      const data::SensitiveView& initial_sensitive,
      const OnlineOptions& options, uint64_t seed,
      serve::AssignService* service = nullptr);

  /// \brief Restores an engine from `options.checkpoint_dir`: the "FKOL"
  /// engine file rebuilds the store, sensitive view, id map and stats; the
  /// sibling solver checkpoint restores the bit-exact float state, falling
  /// back to a canonical warm-start rebuild from the saved assignment when
  /// it is missing or torn. Publishes a fresh generation on success.
  static Result<std::unique_ptr<OnlineFairKM>> Recover(
      const OnlineOptions& options, serve::AssignService* service = nullptr);

  OnlineFairKM(const OnlineFairKM&) = delete;
  OnlineFairKM& operator=(const OnlineFairKM&) = delete;

  /// \brief Admits a batch: each row is scored by its live Eq. 1 insertion
  /// cost and appended to the store/state. When the training view carries
  /// sensitive attributes, `sensitive` must mirror its structure and cover
  /// every admitted row (same contract as FairKMSolver::Assign); with an
  /// attribute-free view it may be null. Returns the stable ids, in row
  /// order. The whole batch is validated before the first row is admitted.
  Result<std::vector<uint64_t>> Admit(
      const data::Matrix& points,
      const data::SensitiveView* sensitive = nullptr);

  /// \brief Retires previously admitted points by id. The batch is
  /// validated up front (unknown or duplicate ids, or retiring every live
  /// point, reject the whole call with no state change). O(d + |S|) per id.
  Status Retire(const std::vector<uint64_t>& ids);

  /// \brief Canonical rebuild: every aggregate, moment table and bound is
  /// recomputed from scratch over the surviving rows (the oracle contract in
  /// the header comment). The assignment is unchanged.
  Status Flush();

  /// \brief Forces one bounded re-sweep (Flush + budgeted Run + republish +
  /// durable checkpoint), regardless of the drift monitor — the test/bench
  /// hook for exercising the drift path deterministically.
  Status TriggerResweep();

  /// \brief Freezes the current model and publishes it to the service with
  /// the next generation number (no-op generation bump without a service).
  Status PublishSnapshot();

  /// \brief Writes the durable engine + solver checkpoint pair now.
  /// Requires a configured checkpoint_dir.
  Status Checkpoint();

  OnlineStats Stats() const;

  /// \brief Live ids in engine row order (test/introspection helper).
  std::vector<uint64_t> LiveIds() const;

  /// \brief Copy of the surviving rows in engine row order — the point set
  /// the oracle rebuild runs over.
  data::Matrix SurvivingPoints() const;

  /// \brief Copy of the engine's sensitive view (current fractions/means).
  data::SensitiveView SurvivingSensitive() const;

  /// \brief Copy of the current assignment in engine row order.
  cluster::Assignment CurrentAssignment() const;

  /// \brief The owned session. NOT synchronized: touch only while no other
  /// thread is inside a mutating engine call (tests quiesce first).
  const core::FairKMSolver& solver() const { return *solver_; }

 private:
  OnlineFairKM(OnlineOptions options, serve::AssignService* service)
      : options_(std::move(options)), service_(service) {}

  // All Locked helpers require mu_ held.
  void AssignInitialIdsLocked();
  void RefreshViewLocked();
  Status SyncAfterMembershipChangeLocked();
  Status FlushLocked();
  Status MaybeResweepLocked();
  Status ResweepLocked();
  Status PublishLocked();
  Status CheckpointLocked();

  OnlineOptions options_;
  serve::AssignService* service_;  // Not owned; may be null.

  mutable std::mutex mu_;
  std::shared_ptr<data::PointStore> store_;  // Growable mem store (owned).
  data::SensitiveView view_;                 // Owned; solver points at it.
  std::unique_ptr<core::FairKMSolver> solver_;

  // Stable-id row map: row_ids_[row] is the id living at that store row;
  // id_to_row_ inverts it. Retirement mirrors the store's swap-with-last.
  std::vector<uint64_t> row_ids_;
  std::unordered_map<uint64_t, size_t> id_to_row_;
  uint64_t next_id_ = 1;

  uint64_t generation_ = 0;
  double baseline_per_point_ = 0.0;
  uint64_t admitted_ = 0;
  uint64_t retired_ = 0;
  uint64_t resweeps_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace online
}  // namespace fairkm

#endif  // FAIRKM_ONLINE_ONLINE_FAIRKM_H_
