#include "cluster/clusterer.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "cluster/zgya.h"

namespace fairkm {
namespace cluster {

namespace {

// Resolves the single categorical attribute a zgya* run targets: the named
// one when options.attribute is set, otherwise the view's only categorical
// attribute. Returns a one-attribute view (copy; RunZgya reads it
// synchronously).
Result<data::SensitiveView> SelectZgyaAttribute(
    const data::SensitiveView& sensitive, const std::string& attribute) {
  if (!attribute.empty()) return sensitive.SelectCategorical(attribute);
  if (sensitive.categorical.size() == 1 && sensitive.numeric.empty()) {
    return sensitive;
  }
  return Status::InvalidArgument(
      "zgya needs exactly one categorical sensitive attribute (or set "
      "ClustererOptions::attribute)");
}

class KMeansClusterer : public Clusterer {
 public:
  explicit KMeansClusterer(const ClustererOptions& options) {
    options_.k = options.k;
    if (options.max_iterations > 0) {
      options_.max_iterations = options.max_iterations;
    }
    if (options.init) options_.init = *options.init;
  }

  const std::string& name() const override {
    static const std::string kName = "kmeans";
    return kName;
  }

  Result<ClusteringResult> Cluster(const data::Matrix& points,
                                   const data::SensitiveView& sensitive,
                                   Rng* rng) override {
    (void)sensitive;  // S-blind by definition.
    return RunKMeans(points, options_, rng);
  }

 private:
  KMeansOptions options_;
};

class ZgyaClusterer : public Clusterer {
 public:
  ZgyaClusterer(const ClustererOptions& options, ZgyaOptions::Mode mode,
                std::string name)
      : name_(std::move(name)), attribute_(options.attribute) {
    options_.k = options.k;
    options_.lambda = options.lambda;
    if (options.max_iterations > 0) {
      options_.max_iterations = options.max_iterations;
    }
    if (options.init) options_.init = *options.init;
    options_.mode = mode;
    if (options.soft_temperature > 0) {
      options_.soft_temperature = options.soft_temperature;
    }
  }

  const std::string& name() const override { return name_; }

  Result<ClusteringResult> Cluster(const data::Matrix& points,
                                   const data::SensitiveView& sensitive,
                                   Rng* rng) override {
    FAIRKM_ASSIGN_OR_RETURN(data::SensitiveView view,
                            SelectZgyaAttribute(sensitive, attribute_));
    FAIRKM_ASSIGN_OR_RETURN(ZgyaResult result,
                            RunZgya(points, view.categorical[0], options_, rng));
    return ClusteringResult(std::move(static_cast<ClusteringResult&>(result)));
  }

 private:
  std::string name_;
  std::string attribute_;
  ZgyaOptions options_;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ClustererFactory> factories;
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry;
    r->factories["kmeans"] = [](const ClustererOptions& options)
        -> Result<std::unique_ptr<Clusterer>> {
      return std::unique_ptr<Clusterer>(new KMeansClusterer(options));
    };
    r->factories["zgya"] = [](const ClustererOptions& options)
        -> Result<std::unique_ptr<Clusterer>> {
      return std::unique_ptr<Clusterer>(
          new ZgyaClusterer(options, ZgyaOptions::Mode::kSoftVariational, "zgya"));
    };
    r->factories["zgya-hard"] = [](const ClustererOptions& options)
        -> Result<std::unique_ptr<Clusterer>> {
      return std::unique_ptr<Clusterer>(
          new ZgyaClusterer(options, ZgyaOptions::Mode::kHardMoves, "zgya-hard"));
    };
    return r;
  }();
  return *registry;
}

}  // namespace

Status RegisterClusterer(const std::string& name, ClustererFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("clusterer name must not be empty");
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.factories[name] = std::move(factory);
  return Status::OK();
}

bool IsClustererRegistered(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.factories.count(name) != 0;
}

Result<std::unique_ptr<Clusterer>> CreateClusterer(
    const std::string& name, const ClustererOptions& options) {
  ClustererFactory factory;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.factories.find(name);
    if (it == registry.factories.end()) {
      std::string known;
      for (const auto& [key, unused] : registry.factories) {
        (void)unused;
        known += known.empty() ? key : ", " + key;
      }
      return Status::NotFound("no clusterer named \"" + name +
                              "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(options);
}

std::vector<std::string> RegisteredClusterers() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, unused] : registry.factories) {
    (void)unused;
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted.
}

}  // namespace cluster
}  // namespace fairkm
