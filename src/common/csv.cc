#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace fairkm {
namespace {

// Parses the CSV body into rows of fields. Returns an error on an unterminated
// quoted field.
Status ParseBody(const std::string& text, char delim,
                 std::vector<std::vector<std::string>>* out) {
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    out->push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == delim) {
      end_field();
    } else if (c == '\r') {
      // Swallow; handled with the following '\n' (or ignored if bare).
    } else if (c == '\n') {
      ++line;
      end_row();
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) {
    return Status::IOError("unterminated quoted CSV field (line " +
                           std::to_string(line) + ")");
  }
  // Trailing row without final newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return Status::OK();
}

bool NeedsQuoting(const std::string& s, char delim) {
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("CSV column not found: " + name);
}

Result<CsvTable> ParseCsv(const std::string& text, char delim, bool has_header) {
  std::vector<std::vector<std::string>> raw;
  FAIRKM_RETURN_NOT_OK(ParseBody(text, delim, &raw));
  CsvTable table;
  if (raw.empty()) return table;
  size_t start = 0;
  if (has_header) {
    table.header = raw[0];
    start = 1;
  } else {
    table.header.reserve(raw[0].size());
    for (size_t i = 0; i < raw[0].size(); ++i) {
      table.header.push_back("c" + std::to_string(i));
    }
  }
  const size_t width = table.header.size();
  for (size_t r = start; r < raw.size(); ++r) {
    if (raw[r].size() != width) {
      return Status::IOError("CSV row " + std::to_string(r) + " has " +
                             std::to_string(raw[r].size()) + " fields, expected " +
                             std::to_string(width));
    }
    table.rows.push_back(std::move(raw[r]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, char delim, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), delim, has_header);
}

std::string WriteCsv(const CsvTable& table, char delim) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += delim;
      if (NeedsQuoting(row[i], delim)) {
        out += '"';
        for (char c : row[i]) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += row[i];
      }
    }
    out += '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path, char delim) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out << WriteCsv(table, delim);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace fairkm
