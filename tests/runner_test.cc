#include "exp/runner.h"

#include <gtest/gtest.h>

#include "core/fairkm.h"

namespace fairkm {
namespace exp {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One shared small Adult slice keeps the suite fast.
    AdultExperimentOptions opt;
    opt.subsample = 600;
    data_ = new ExperimentData(LoadAdultExperiment(opt).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static ExperimentData* data_;
};

ExperimentData* RunnerTest::data_ = nullptr;

TEST_F(RunnerTest, BlindKMeansHasZeroDeviationFromItself) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kKMeansBlind;
  config.fairkm.k = 4;
  auto outcome = runner.RunSeed(config, 3).ValueOrDie();
  EXPECT_EQ(outcome.devc, 0.0);
  EXPECT_EQ(outcome.devo, 0.0);
  EXPECT_GT(outcome.co, 0.0);
}

TEST_F(RunnerTest, FairKMSeedOutcomeIsComplete) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kFairKMAll;
  config.fairkm.k = 4;
  config.fairkm.lambda = core::SuggestLambda(data_->features.rows(), 4);
  auto outcome = runner.RunSeed(config, 5).ValueOrDie();
  EXPECT_EQ(outcome.assignment.size(), data_->features.rows());
  EXPECT_GT(outcome.co, 0.0);
  EXPECT_GE(outcome.devc, 0.0);
  EXPECT_GE(outcome.devo, 0.0);
  EXPECT_EQ(outcome.fairness.per_attribute.size(), 5u);
  EXPECT_GT(outcome.seconds, 0.0);
}

TEST_F(RunnerTest, SingleAttributeMethodsNeedAValidAttribute) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kZgyaSingle;
  config.fairkm.k = 3;
  config.single_attribute = "not-an-attribute";
  EXPECT_FALSE(runner.RunSeed(config, 1).ok());
  config.single_attribute = "gender";
  EXPECT_TRUE(runner.RunSeed(config, 1).ok());
}

TEST_F(RunnerTest, AggregationAveragesSeeds) {
  ExperimentRunner runner(data_, /*num_threads=*/2);
  RunConfig config;
  config.method = Method::kKMeansBlind;
  config.fairkm.k = 3;
  auto agg = runner.Run(config, 4, 100).ValueOrDie();
  EXPECT_EQ(agg.total_runs, 4u);
  EXPECT_EQ(agg.co.count(), 4u);
  EXPECT_GT(agg.co.mean(), 0.0);
  EXPECT_EQ(agg.devc.mean(), 0.0);
  // Fairness map has the 5 attributes plus "mean".
  EXPECT_EQ(agg.fairness.size(), 6u);
  EXPECT_GT(agg.FairnessOf("gender").ae.mean(), 0.0);
  EXPECT_GT(agg.FairnessOf("mean").ae.mean(), 0.0);
}

TEST_F(RunnerTest, ParallelAndSerialAggregationAgree) {
  ExperimentRunner serial(data_, 1);
  ExperimentRunner parallel(data_, 4);
  RunConfig config;
  config.method = Method::kFairKMAll;
  config.fairkm.k = 3;
  config.fairkm.lambda = core::SuggestLambda(data_->features.rows(), 3);
  config.fairkm.max_iterations = 10;
  auto a = serial.Run(config, 3, 50).ValueOrDie();
  auto b = parallel.Run(config, 3, 50).ValueOrDie();
  EXPECT_NEAR(a.co.mean(), b.co.mean(), 1e-9);
  EXPECT_NEAR(a.FairnessOf("mean").ae.mean(), b.FairnessOf("mean").ae.mean(), 1e-12);
}

TEST_F(RunnerTest, ZeroSeedsRejected) {
  ExperimentRunner runner(data_);
  RunConfig config;
  EXPECT_FALSE(runner.Run(config, 0).ok());
}

TEST_F(RunnerTest, MethodNamesAreHumanReadable) {
  EXPECT_EQ(MethodName(Method::kKMeansBlind), "K-Means(N)");
  EXPECT_EQ(MethodName(Method::kFairKMAll), "FairKM");
  EXPECT_EQ(MethodName(Method::kFairKMSingle), "FairKM(S)");
  EXPECT_EQ(MethodName(Method::kZgyaSingle), "ZGYA(S)");
  EXPECT_EQ(MethodName(Method::kZgyaHard), "ZGYA-hard(S)");
}

TEST_F(RunnerTest, FailingSeedIsNamedInTheAggregateStatus) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kZgyaSingle;
  config.fairkm.k = 3;
  config.single_attribute = "not-an-attribute";
  auto result = runner.Run(config, 3, 500);
  ASSERT_FALSE(result.ok());
  // The aggregate status must say WHICH seed failed, not just why.
  EXPECT_NE(result.status().message().find("seed 500"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("index 0 of 3"), std::string::npos)
      << result.status().ToString();
}

TEST_F(RunnerTest, SharedSessionMatchesColdRunSeed) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kFairKMAll;
  config.fairkm.k = 3;
  config.fairkm.lambda = core::SuggestLambda(data_->features.rows(), 3);
  config.fairkm.max_iterations = 8;
  auto session = runner.MakeSession(config).ValueOrDie();
  for (uint64_t seed : {900u, 901u, 902u}) {
    auto warm = runner.RunSeed(config, seed, &session).ValueOrDie();
    auto cold = runner.RunSeed(config, seed).ValueOrDie();
    EXPECT_EQ(warm.assignment, cold.assignment) << "seed " << seed;
    EXPECT_EQ(warm.iterations, cold.iterations) << "seed " << seed;
  }
}

TEST_F(RunnerTest, SupervisedSeedMatchesPlainSeedAndFillsStats) {
  ExperimentRunner runner(data_);
  RunConfig config;
  config.method = Method::kFairKMAll;
  config.fairkm.k = 3;
  config.fairkm.lambda = core::SuggestLambda(data_->features.rows(), 3);
  config.fairkm.max_iterations = 8;

  core::SupervisorPolicy policy;  // no checkpoint dir: in-memory snapshots
  auto supervised = runner.RunSupervisedSeed(config, 42, policy).ValueOrDie();
  auto plain = runner.RunSeed(config, 42).ValueOrDie();

  // A fault-free supervised run is bit-identical to the plain path and
  // carries the same downstream measurements.
  EXPECT_EQ(supervised.outcome.assignment, plain.assignment);
  EXPECT_EQ(supervised.outcome.iterations, plain.iterations);
  EXPECT_EQ(supervised.outcome.co, plain.co);
  EXPECT_EQ(supervised.outcome.fairness.per_attribute.size(), 5u);
  EXPECT_EQ(supervised.outcome.converged, plain.converged);
  EXPECT_EQ(supervised.stop, plain.converged ? core::RunStop::kConverged
                                             : core::RunStop::kIterationCap);
  EXPECT_EQ(supervised.supervisor.rollbacks, 0);
  EXPECT_EQ(supervised.supervisor.converged, plain.converged);
  EXPECT_GT(supervised.supervisor.sweeps_total, 0);

  // Supervision is a FairKM-only concept: other methods are rejected.
  RunConfig blind = config;
  blind.method = Method::kKMeansBlind;
  EXPECT_FALSE(runner.RunSupervisedSeed(blind, 42, policy).ok());
}

TEST_F(RunnerTest, FairKMBeatsBlindOnFairnessAggregates) {
  ExperimentRunner runner(data_, 2);
  RunConfig blind;
  blind.method = Method::kKMeansBlind;
  blind.fairkm.k = 4;
  RunConfig fair;
  fair.method = Method::kFairKMAll;
  fair.fairkm.k = 4;
  fair.fairkm.lambda = core::SuggestLambda(data_->features.rows(), 4);
  auto blind_agg = runner.Run(blind, 3, 7).ValueOrDie();
  auto fair_agg = runner.Run(fair, 3, 7).ValueOrDie();
  EXPECT_LT(fair_agg.FairnessOf("mean").ae.mean(),
            blind_agg.FairnessOf("mean").ae.mean());
}

}  // namespace
}  // namespace exp
}  // namespace fairkm
