#include "testlib/brute_force.h"

#include <cmath>
#include <sstream>

namespace fairkm {
namespace testutil {

BruteForceAggregates RecomputeAggregates(const data::Matrix& points,
                                         const data::SensitiveView& sensitive,
                                         const cluster::Assignment& assignment,
                                         int k,
                                         const core::FairnessTermConfig& config) {
  BruteForceAggregates out;
  out.counts = cluster::ClusterSizes(assignment, k);
  out.centroids = cluster::ComputeCentroids(points, assignment, k);
  out.kmeans_term = cluster::SumOfSquaredErrors(points, assignment, out.centroids);
  out.fairness_term = core::ComputeFairnessTerm(sensitive, assignment, k, config);

  const size_t uk = static_cast<size_t>(k);
  for (const auto& attr : sensitive.categorical) {
    std::vector<int64_t> counts(uk * static_cast<size_t>(attr.cardinality), 0);
    for (size_t i = 0; i < attr.codes.size(); ++i) {
      const size_t c = static_cast<size_t>(assignment[i]);
      counts[c * static_cast<size_t>(attr.cardinality) +
             static_cast<size_t>(attr.codes[i])]++;
    }
    out.cat_counts.push_back(std::move(counts));
  }
  for (const auto& attr : sensitive.numeric) {
    std::vector<double> sums(uk, 0.0);
    for (size_t i = 0; i < attr.values.size(); ++i) {
      sums[static_cast<size_t>(assignment[i])] += attr.values[i];
    }
    out.num_sums.push_back(std::move(sums));
  }
  return out;
}

cluster::Assignment BruteForceAssign(const data::Matrix& points,
                                     const data::SensitiveView& sensitive,
                                     const cluster::Assignment& trained, int k,
                                     double lambda,
                                     const data::Matrix& new_points,
                                     const data::SensitiveView* new_sensitive,
                                     const core::FairnessTermConfig& config) {
  const BruteForceAggregates agg =
      RecomputeAggregates(points, sensitive, trained, k, config);
  const size_t n = points.rows();  // Serving holds the training n fixed.
  const size_t d = points.cols();

  // Scratch-recomputed deviation term of ONE cluster given its value counts
  // / numeric sums and size (only the candidate cluster's term changes on a
  // virtual insertion; every other cluster cancels in the delta).
  auto cluster_term = [&](int c, size_t size,
                          const std::vector<std::vector<int64_t>>& cat_counts,
                          const std::vector<std::vector<double>>& num_sums) {
    const double scale = core::ClusterScale(config.weighting, size, n);
    double total = 0.0;
    for (size_t a = 0; a < sensitive.categorical.size(); ++a) {
      const auto& attr = sensitive.categorical[a];
      const double norm =
          config.normalize_domain ? 1.0 / attr.cardinality : 1.0;
      double dev = 0.0;
      for (int s = 0; s < attr.cardinality; ++s) {
        const double u =
            static_cast<double>(
                cat_counts[a][static_cast<size_t>(c) * attr.cardinality +
                              static_cast<size_t>(s)]) -
            static_cast<double>(size) * attr.dataset_fractions[s];
        dev += u * u;
      }
      total += attr.weight * norm * scale * dev;
    }
    for (size_t a = 0; a < sensitive.numeric.size(); ++a) {
      const auto& attr = sensitive.numeric[a];
      const double u = num_sums[a][static_cast<size_t>(c)] -
                       static_cast<double>(size) * attr.dataset_mean;
      total += attr.weight * scale * u * u;
    }
    return total;
  };

  cluster::Assignment out(new_points.rows(), 0);
  for (size_t i = 0; i < new_points.rows(); ++i) {
    const double* x = new_points.Row(i);
    double best = 0.0;
    int best_cluster = -1;
    for (int c = 0; c < k; ++c) {
      const size_t cnt = agg.counts[static_cast<size_t>(c)];
      if (cnt == 0) continue;  // No prototype to serve.
      const double* mu = agg.centroids.Row(static_cast<size_t>(c));
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = x[j] - mu[j];
        dist += diff * diff;
      }
      double cost =
          static_cast<double>(cnt) / static_cast<double>(cnt + 1) * dist;
      if (new_sensitive != nullptr) {
        // Virtually insert the point's sensitive values into cluster c.
        auto cat_counts = agg.cat_counts;
        auto num_sums = agg.num_sums;
        for (size_t a = 0; a < sensitive.categorical.size(); ++a) {
          const int m = sensitive.categorical[a].cardinality;
          ++cat_counts[a][static_cast<size_t>(c) * m +
                          static_cast<size_t>(
                              new_sensitive->categorical[a].codes[i])];
        }
        for (size_t a = 0; a < sensitive.numeric.size(); ++a) {
          num_sums[a][static_cast<size_t>(c)] +=
              new_sensitive->numeric[a].values[i];
        }
        const double before = cluster_term(c, cnt, agg.cat_counts, agg.num_sums);
        const double after = cluster_term(c, cnt + 1, cat_counts, num_sums);
        cost += lambda * (after - before);
      }
      if (best_cluster < 0 || cost < best) {
        best = cost;
        best_cluster = c;
      }
    }
    out[i] = best_cluster < 0 ? 0 : best_cluster;
  }
  return out;
}

double BruteForceDeltaKMeans(const data::Matrix& points,
                             const cluster::Assignment& assignment, int k,
                             size_t i, int to) {
  const double before = cluster::SumOfSquaredErrors(
      points, assignment, cluster::ComputeCentroids(points, assignment, k));
  cluster::Assignment moved = assignment;
  moved[i] = static_cast<int32_t>(to);
  const double after = cluster::SumOfSquaredErrors(
      points, moved, cluster::ComputeCentroids(points, moved, k));
  return after - before;
}

double BruteForceDeltaFairness(const data::SensitiveView& sensitive,
                               const cluster::Assignment& assignment, int k,
                               size_t i, int to,
                               const core::FairnessTermConfig& config) {
  const double before = core::ComputeFairnessTerm(sensitive, assignment, k, config);
  cluster::Assignment moved = assignment;
  moved[i] = static_cast<int32_t>(to);
  const double after = core::ComputeFairnessTerm(sensitive, moved, k, config);
  return after - before;
}

::testing::AssertionResult StateMatchesBruteForce(
    const core::FairKMState& state, const data::Matrix& points,
    const data::SensitiveView& sensitive, const core::FairnessTermConfig& config,
    double tolerance) {
  const cluster::Assignment& assignment = state.assignment();
  if (assignment.size() != points.rows()) {
    return ::testing::AssertionFailure()
           << "assignment has " << assignment.size() << " entries for "
           << points.rows() << " points";
  }
  const int k = state.k();
  const BruteForceAggregates expected =
      RecomputeAggregates(points, sensitive, assignment, k, config);

  for (int c = 0; c < k; ++c) {
    if (state.cluster_size(c) != expected.counts[static_cast<size_t>(c)]) {
      return ::testing::AssertionFailure()
             << "cluster " << c << " size: state says " << state.cluster_size(c)
             << ", brute force says " << expected.counts[static_cast<size_t>(c)];
    }
  }

  const data::Matrix centroids = state.Centroids();
  if (centroids.rows() != expected.centroids.rows() ||
      centroids.cols() != expected.centroids.cols()) {
    return ::testing::AssertionFailure()
           << "centroid shape (" << centroids.rows() << " x " << centroids.cols()
           << ") != (" << expected.centroids.rows() << " x "
           << expected.centroids.cols() << ")";
  }
  for (size_t r = 0; r < centroids.rows(); ++r) {
    for (size_t c = 0; c < centroids.cols(); ++c) {
      const double got = centroids.At(r, c);
      const double want = expected.centroids.At(r, c);
      if (std::fabs(got - want) > tolerance) {
        return ::testing::AssertionFailure()
               << "centroid[" << r << "][" << c << "] = " << got
               << ", brute force " << want << " (|diff| "
               << std::fabs(got - want) << " > " << tolerance << ")";
      }
    }
  }

  if (std::fabs(state.KMeansTerm() - expected.kmeans_term) >
      tolerance * std::max(1.0, std::fabs(expected.kmeans_term))) {
    return ::testing::AssertionFailure()
           << "KMeansTerm " << state.KMeansTerm() << " != brute force "
           << expected.kmeans_term;
  }
  if (std::fabs(state.FairnessTerm() - expected.fairness_term) >
      tolerance * std::max(1.0, std::fabs(expected.fairness_term))) {
    return ::testing::AssertionFailure()
           << "FairnessTerm " << state.FairnessTerm() << " != brute force "
           << expected.fairness_term;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult PrunerBoundsHold(const core::FairKMState& state,
                                            const core::SweepPruner& pruner,
                                            double lambda,
                                            double min_improvement,
                                            double tolerance) {
  if (!state.bound_tracking()) {
    return ::testing::AssertionFailure() << "bound tracking is not enabled";
  }
  const size_t n = state.num_rows();
  const int k = state.k();
  std::vector<double> km(static_cast<size_t>(k));
  std::vector<double> dists(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    // The fairness table split must reproduce the exact closed form for
    // every point, fresh or not.
    for (int c = 0; c < k; ++c) {
      if (c == state.cluster_of(i)) continue;
      const double exact = state.DeltaFairness(i, c);
      const double split = state.FairRemovalDelta(i) + state.FairInsertionDelta(i, c);
      if (std::fabs(split - exact) > tolerance * std::max(1.0, std::fabs(exact))) {
        return ::testing::AssertionFailure()
               << "fairness table split " << split << " != DeltaFairness "
               << exact << " for point " << i << " -> " << c;
      }
    }
    if (!pruner.IsFresh(i)) continue;
    const int from = state.cluster_of(i);
    // Exact (clamped, expanded-form) distances as the sweep computes them.
    state.DeltaKMeansAllClusters(i, km.data(), dists.data());
    const double self_dist = std::sqrt(dists[static_cast<size_t>(from)]);
    if (self_dist > pruner.UpperBound(i) + tolerance) {
      return ::testing::AssertionFailure()
             << "point " << i << ": own-centroid distance " << self_dist
             << " exceeds upper bound " << pruner.UpperBound(i);
    }
    for (int c = 0; c < k; ++c) {
      if (c == from || state.effective_count(c) == 0) continue;
      const double dist = std::sqrt(dists[static_cast<size_t>(c)]);
      if (dist < pruner.CandidateLowerBound(i, c) - tolerance) {
        return ::testing::AssertionFailure()
               << "point " << i << " cluster " << c << ": distance " << dist
               << " below candidate lower bound "
               << pruner.CandidateLowerBound(i, c);
      }
      if (dist < pruner.LowerBound(i) - tolerance) {
        return ::testing::AssertionFailure()
               << "point " << i << " cluster " << c << ": distance " << dist
               << " below global lower bound " << pruner.LowerBound(i);
      }
    }
    // Per-cluster fairness bounds against this point's exact deltas.
    if (state.FairRemovalDelta(i) <
        state.fair_removal_bound(from) - tolerance) {
      return ::testing::AssertionFailure()
             << "point " << i << ": removal delta " << state.FairRemovalDelta(i)
             << " below cluster bound " << state.fair_removal_bound(from);
    }
    for (int c = 0; c < k; ++c) {
      if (c == from) continue;
      if (state.FairInsertionDelta(i, c) <
          state.fair_insertion_bound(c) - tolerance) {
        return ::testing::AssertionFailure()
               << "point " << i << " cluster " << c << ": insertion delta "
               << state.FairInsertionDelta(i, c) << " below cluster bound "
               << state.fair_insertion_bound(c);
      }
    }
    // End-to-end soundness: a pruned point must have no improving move under
    // the exact kernels.
    if (pruner.ShouldPrune(i)) {
      for (int c = 0; c < k; ++c) {
        if (c == from) continue;
        const double delta =
            km[static_cast<size_t>(c)] + lambda * state.DeltaFairness(i, c);
        if (delta < -min_improvement) {
          return ::testing::AssertionFailure()
                 << "point " << i << " was pruned but moving to " << c
                 << " improves the objective by " << -delta
                 << " (> min_improvement " << min_improvement << ")";
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testutil
}  // namespace fairkm
