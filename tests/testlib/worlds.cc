#include "testlib/worlds.h"

#include "test_util.h"

namespace fairkm {
namespace testutil {

SeededWorld MakeSeededWorld(uint64_t seed, const WorldSpec& spec) {
  Rng rng(seed);
  SeededWorld world;
  world.k = spec.k;
  world.points = MakeBlobs(spec.blobs, spec.per_blob, spec.dim, &rng);
  const size_t n = world.points.rows();

  for (int a = 0; a < spec.categorical_attrs; ++a) {
    const int cardinality = 2 + a;
    data::CategoricalSensitive attr = MakeCategorical(
        RandomCodes(n, cardinality, &rng), cardinality, "cat" + std::to_string(a));
    if (spec.random_weights) attr.weight = rng.UniformDouble(0.5, 2.0);
    world.sensitive.categorical.push_back(std::move(attr));
  }
  for (int a = 0; a < spec.numeric_attrs; ++a) {
    std::vector<double> values(n);
    for (double& v : values) v = rng.UniformDouble(-1.0, 3.0);
    data::NumericSensitive attr = MakeNumeric(values, "num" + std::to_string(a));
    if (spec.random_weights) attr.weight = rng.UniformDouble(0.5, 2.0);
    world.sensitive.numeric.push_back(std::move(attr));
  }

  world.assignment.resize(n);
  for (auto& c : world.assignment) {
    c = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(spec.k)));
  }
  return world;
}

std::vector<MoveOp> RandomMoveSequence(size_t num_moves, size_t num_rows, int k,
                                       Rng* rng) {
  std::vector<MoveOp> moves(num_moves);
  for (auto& move : moves) {
    move.point = static_cast<size_t>(rng->UniformInt(num_rows));
    move.to = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(k)));
  }
  return moves;
}

}  // namespace testutil
}  // namespace fairkm
