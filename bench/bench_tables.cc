#include "bench_tables.h"

#include <cstdio>

#include "exp/table.h"

namespace fairkm {
namespace bench {
namespace {

exp::AggregateOutcome RunOrDie(const exp::ExperimentRunner& runner,
                               const exp::RunConfig& config, size_t seeds) {
  return runner.Run(config, seeds, /*base_seed=*/1000).ValueOrDie();
}

exp::RunConfig BlindConfig(int k) {
  exp::RunConfig c;
  c.method = exp::Method::kKMeansBlind;
  c.fairkm.k = k;
  return c;
}

exp::RunConfig FairKMConfig(const exp::ExperimentData& data, int k) {
  exp::RunConfig c;
  c.method = exp::Method::kFairKMAll;
  c.fairkm.k = k;
  c.fairkm.lambda = data.paper_lambda;
  return c;
}

exp::RunConfig FairKMSingleConfig(const exp::ExperimentData& data, int k,
                                  const std::string& attr) {
  exp::RunConfig c;
  c.method = exp::Method::kFairKMSingle;
  c.fairkm.k = k;
  c.fairkm.lambda = data.paper_lambda;
  c.single_attribute = attr;
  return c;
}

exp::RunConfig ZgyaConfig(const exp::ExperimentData& data, int k,
                          const std::string& attr) {
  exp::RunConfig c;
  c.method = exp::Method::kZgyaSingle;
  c.fairkm.k = k;
  c.zgya_lambda = data.zgya_lambda;
  c.zgya_soft_temperature = data.zgya_soft_temperature;
  c.single_attribute = attr;
  return c;
}

}  // namespace

void RunQualityTable(const exp::ExperimentData& data, const std::vector<int>& ks,
                     const BenchEnv& env,
                     const std::vector<PaperQualityReference>& paper_refs) {
  exp::ExperimentRunner runner(&data, env.threads);
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    const int k = ks[ki];
    auto blind = RunOrDie(runner, BlindConfig(k), env.seeds);
    auto fairkm = RunOrDie(runner, FairKMConfig(data, k), env.seeds);

    // Avg. ZGYA: each evaluation measure averaged across the per-attribute
    // ZGYA(S) invocations (paper §5.5.1).
    double z_co = 0, z_sh = 0, z_devc = 0, z_devo = 0;
    for (const auto& attr : data.sensitive_names) {
      auto z = RunOrDie(runner, ZgyaConfig(data, k, attr), env.seeds);
      z_co += z.co.mean();
      z_sh += z.sh.mean();
      z_devc += z.devc.mean();
      z_devo += z.devo.mean();
    }
    const double inv = 1.0 / static_cast<double>(data.sensitive_names.size());

    std::printf("\n--- k = %d ---\n", k);
    const bool have_paper = ki < paper_refs.size();
    exp::TablePrinter table(
        have_paper
            ? std::vector<std::string>{"Measure", "K-Means(N)", "Avg. ZGYA",
                                       "FairKM", "paper:K-Means", "paper:ZGYA",
                                       "paper:FairKM"}
            : std::vector<std::string>{"Measure", "K-Means(N)", "Avg. ZGYA",
                                       "FairKM"});
    auto add = [&](const std::string& name, double b, double z, double f,
                   size_t paper_row) {
      std::vector<std::string> row = {name, exp::Cell(b), exp::Cell(z),
                                      exp::Cell(f)};
      if (have_paper) {
        const auto& p = paper_refs[ki];
        row.push_back(exp::Cell(p.kmeans[paper_row]));
        row.push_back(exp::Cell(p.zgya[paper_row]));
        row.push_back(exp::Cell(p.fairkm[paper_row]));
      }
      table.AddRow(std::move(row));
    };
    add("CO (down)", blind.co.mean(), z_co * inv, fairkm.co.mean(), 0);
    add("SH (up)", blind.sh.mean(), z_sh * inv, fairkm.sh.mean(), 1);
    add("DevC (down)", blind.devc.mean(), z_devc * inv, fairkm.devc.mean(), 2);
    add("DevO (down)", blind.devo.mean(), z_devo * inv, fairkm.devo.mean(), 3);
    table.Print();
    std::printf("FairKM perf: %s\n", exp::PerfSummary(fairkm).c_str());
  }
  std::printf(
      "\nExpected shape (paper): K-Means(N) best on CO/SH; FairKM close behind;\n"
      "ZGYA far worse on CO and SH. Absolute values differ (synthetic data,\n"
      "min-max scaling); the ordering and rough ratios are the reproduction\n"
      "target. See EXPERIMENTS.md.\n");
}

void RunFairnessTable(const exp::ExperimentData& data, const std::vector<int>& ks,
                      const BenchEnv& env) {
  exp::ExperimentRunner runner(&data, env.threads);
  for (int k : ks) {
    auto blind = RunOrDie(runner, BlindConfig(k), env.seeds);
    auto fairkm = RunOrDie(runner, FairKMConfig(data, k), env.seeds);

    struct AttrRow {
      std::string attr;
      exp::AggregateOutcome zgya;
    };
    std::vector<AttrRow> zgya_rows;
    for (const auto& attr : data.sensitive_names) {
      zgya_rows.push_back({attr, RunOrDie(runner, ZgyaConfig(data, k, attr),
                                          env.seeds)});
    }

    std::printf("\n--- k = %d (FairKM lambda = %g, ZGYA lambda = %.3g) ---\n", k,
                data.paper_lambda, data.zgya_lambda);
    exp::TablePrinter table({"Attribute", "Measure", "K-Means(N)", "ZGYA(S)",
                             "FairKM", "FairKM Impr(%)"});

    auto add_block = [&](const std::string& label, double b_ae, double b_aw,
                         double b_me, double b_mw, double z_ae, double z_aw,
                         double z_me, double z_mw, double f_ae, double f_aw,
                         double f_me, double f_mw) {
      auto add = [&](const char* m, double b, double z, double f) {
        table.AddRow({label, m, exp::Cell(b), exp::Cell(z), exp::Cell(f),
                      exp::Cell(ImprovementPercent(f, b, z), 2)});
      };
      add("AE", b_ae, z_ae, f_ae);
      add("AW", b_aw, z_aw, f_aw);
      add("ME", b_me, z_me, f_me);
      add("MW", b_mw, z_mw, f_mw);
      table.AddSeparator();
    };

    // Mean across S: ZGYA's column averages each invocation's fairness on
    // its own target attribute — the paper's synthetically favorable setting.
    double z_ae = 0, z_aw = 0, z_me = 0, z_mw = 0;
    for (const auto& row : zgya_rows) {
      const auto& f = row.zgya.FairnessOf(row.attr);
      z_ae += f.ae.mean();
      z_aw += f.aw.mean();
      z_me += f.me.mean();
      z_mw += f.mw.mean();
    }
    const double inv = 1.0 / static_cast<double>(zgya_rows.size());
    const auto& b_mean = blind.FairnessOf("mean");
    const auto& f_mean = fairkm.FairnessOf("mean");
    add_block("Mean across S", b_mean.ae.mean(), b_mean.aw.mean(), b_mean.me.mean(),
              b_mean.mw.mean(), z_ae * inv, z_aw * inv, z_me * inv, z_mw * inv,
              f_mean.ae.mean(), f_mean.aw.mean(), f_mean.me.mean(),
              f_mean.mw.mean());

    for (const auto& row : zgya_rows) {
      const auto& b = blind.FairnessOf(row.attr);
      const auto& z = row.zgya.FairnessOf(row.attr);
      const auto& f = fairkm.FairnessOf(row.attr);
      add_block(row.attr, b.ae.mean(), b.aw.mean(), b.me.mean(), b.mw.mean(),
                z.ae.mean(), z.aw.mean(), z.me.mean(), z.mw.mean(), f.ae.mean(),
                f.aw.mean(), f.me.mean(), f.mw.mean());
    }
    table.Print();
    std::printf("FairKM perf: %s\n", exp::PerfSummary(fairkm).c_str());
  }
  std::printf(
      "\nExpected shape (paper): FairKM wins the Mean-across-S block on all four\n"
      "measures with large margins; ZGYA(S) trails K-Means(N) on the Adult\n"
      "high-cardinality attributes but improves on the binary Kinematics types.\n");
}

void RunFigureComparison(const exp::ExperimentData& data, const std::string& measure,
                         const BenchEnv& env) {
  const int k = 5;
  exp::ExperimentRunner runner(&data, env.threads);
  auto fair_all = RunOrDie(runner, FairKMConfig(data, k), env.seeds);

  exp::TablePrinter table({"Attribute", "ZGYA(S)", "FairKM (All)", "FairKM(S)"});
  auto pick = [&](const exp::FairnessAggregate& f) {
    return measure == "mw" ? f.mw.mean() : f.aw.mean();
  };
  for (const auto& attr : data.sensitive_names) {
    auto zgya = RunOrDie(runner, ZgyaConfig(data, k, attr), env.seeds);
    auto fair_single =
        RunOrDie(runner, FairKMSingleConfig(data, k, attr), env.seeds);
    table.AddRow({attr, exp::Cell(pick(zgya.FairnessOf(attr))),
                  exp::Cell(pick(fair_all.FairnessOf(attr))),
                  exp::Cell(pick(fair_single.FairnessOf(attr)))});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Figures 1-4): FairKM(S), which spends all of its\n"
      "fairness budget on the one attribute, beats ZGYA(S); FairKM (All) sits\n"
      "close while covering every attribute at once.\n");
}

void RunLambdaSweep(const exp::ExperimentData& data, const std::string& what,
                    const BenchEnv& env) {
  const int k = 5;
  exp::ExperimentRunner runner(&data, env.threads);

  std::vector<std::string> header = {"lambda"};
  if (what == "quality") {
    header.insert(header.end(), {"CO (down)", "SH (up)"});
  } else if (what == "deviation") {
    header.insert(header.end(), {"DevC (down)", "DevO (down)"});
  } else {
    header.insert(header.end(), {"AE", "AW", "ME", "MW"});
  }
  exp::TablePrinter table(header);

  for (double lambda = 1000.0; lambda <= 10000.0; lambda += 1000.0) {
    exp::RunConfig config;
    config.method = exp::Method::kFairKMAll;
    config.fairkm.k = k;
    config.fairkm.lambda = lambda;
    auto agg = RunOrDie(runner, config, env.seeds);
    std::vector<std::string> row = {exp::Cell(lambda, 0)};
    if (what == "quality") {
      row.push_back(exp::Cell(agg.co.mean()));
      row.push_back(exp::Cell(agg.sh.mean()));
    } else if (what == "deviation") {
      row.push_back(exp::Cell(agg.devc.mean()));
      row.push_back(exp::Cell(agg.devo.mean()));
    } else {
      const auto& f = agg.FairnessOf("mean");
      row.push_back(exp::Cell(f.ae.mean()));
      row.push_back(exp::Cell(f.aw.mean()));
      row.push_back(exp::Cell(f.me.mean()));
      row.push_back(exp::Cell(f.mw.mean()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Figures 5-7): quality measures degrade slowly and\n"
      "steadily as lambda grows; the fairness deviations improve gradually.\n");
}

}  // namespace bench
}  // namespace fairkm
