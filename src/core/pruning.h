// Bound-gated candidate pruning for the Algorithm-1 sweep.
//
// The exact sweep evaluates every (point, cluster) candidate every pass, but
// near convergence almost no point has an improving move: the argmin the
// paper's Algorithm 1 needs is "stay put" for the vast majority of points.
// The SweepPruner proves that cheaply, per point and in O(1), from
// Elkan/Hamerly-style distance bounds adapted to the fairness-augmented
// objective, so the batched GEMV + fairness evaluation only runs for the
// survivors. Pruned points produce no move — exactly what the exact
// evaluation would have concluded — so pruned and unpruned sweeps walk
// bit-identical trajectories.
//
// The gate. A move of point i from its cluster `f` to any candidate c is
// accepted only when
//     DeltaKMeans(i, c) + lambda * DeltaFairness(i, c) < -min_improvement.
// The K-Means side is bounded Hamerly-style:
//   * removal gain:   DeltaKMeans >= -|C_f|/(|C_f|-1) * d(i, mu_f)^2 and
//     d(i, mu_f) <= ub(i), a per-point upper bound refreshed to the exact
//     distance whenever i is evaluated and grown by its cluster's centroid
//     drift since (triangle inequality);
//   * addition cost:  candidate c contributes at least
//     |C_c|/(|C_c|+1) * lb(i)^2, where lb(i) lower-bounds the distance
//     to every other centroid (refreshed to the exact second-closest
//     distance, shrunk by the maximum centroid drift since; the factor is 0
//     for an empty candidate cluster).
// Two stages use these bounds:
//   * Stage 1, O(1): fully decoupled — the smallest addition factor across
//     candidates, plus FairKMState's monotone count-based fairness bounds (a
//     per-cluster lower bound on removing *any* point from C_f plus the best
//     insertion bound across candidate targets, exact over the current group
//     counts and recomputed only for clusters whose counts moved). Bites
//     when clusters are fairness-balanced (any move un-balances them).
//   * Stage 2, O(k |S|): per candidate — the fairness delta evaluated
//     exactly via the O(1)-per-attribute closed form (the very values
//     ApplyBestMove would use) plus the bounded K-Means term. Still avoids
//     the O(k d) GEMV, which dominates at tf-idf-scale dimensionality.
// If every candidate is bounded out (minus a defensive rounding margin), no
// move can be accepted and the point is skipped. The bounds are
// conservative by construction; the margin absorbs the floating-point
// reassociation between the bound arithmetic and the exact kernels, and
// tests/fairkm_pruning_test.cc asserts trajectory bit-identity plus
// bound validity (tests/testlib/brute_force.h) across seeded worlds and
// kernel backends.
//
// Concurrency: ShouldPrune is const and reads only cluster-level state that
// is frozen while no Move/RefreshPrototypes runs, so the snapshot-parallel
// sweep may gate candidates from every worker; Refresh writes only point
// i's slots and is safe for distinct points.

#ifndef FAIRKM_CORE_PRUNING_H_
#define FAIRKM_CORE_PRUNING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fairkm_state.h"

namespace fairkm {
namespace core {

/// \brief True when FAIRKM_DISABLE_PRUNING is set to a non-empty value other
/// than "0" in the environment — the escape hatch CI uses to keep the exact
/// sweep exercised (mirrors FAIRKM_FORCE_SCALAR for kernels).
bool PruningDisabledByEnv();

/// \brief Per-point distance bounds + the O(1) pruning gate over a
/// bound-tracking FairKMState. The state must outlive the pruner and have
/// EnableBoundTracking(true) applied for the pruner's whole lifetime.
class SweepPruner {
 public:
  SweepPruner(const FairKMState* state, double lambda, double min_improvement);

  /// \brief O(1) gate: true when no candidate move of point i can improve
  /// the objective by more than min_improvement, proven from the current
  /// bounds. False for points whose bounds are stale (never evaluated, or
  /// moved since their last refresh).
  bool ShouldPrune(size_t i) const;

  /// \brief Installs fresh bounds for point i from an exact evaluation:
  /// `dists` is the k clamped squared centroid distances reported by
  /// FairKMState::DeltaKMeansAllClusters' tracked variant.
  void Refresh(size_t i, const double* dists);

  /// \brief Marks point i's bounds stale (call after the point moved).
  void Invalidate(size_t i);

  /// \brief Marks every point stale, reusing the allocations — the per-Init
  /// reuse path of core::FairKMSolver (stale entries are never read, so no
  /// other slot needs clearing).
  void Reset();

  /// \brief Updates the gate's lambda (e.g. a lambda sweep reusing one
  /// solver). The stored distance bounds are lambda-independent, so they
  /// stay valid; only the gate arithmetic changes.
  void set_lambda(double lambda) { lambda_ = lambda; }

  /// \brief Full copy of the per-point bound state; restoring it alongside
  /// the owning FairKMState's checkpoint resumes with bit-identical pruning
  /// decisions (and therefore bit-identical pruned-candidate counters).
  struct Checkpoint {
    std::vector<double> lb0, drift_ref, lbmin0, max_drift_ref;
    std::vector<uint8_t> fresh;
  };
  void SaveCheckpoint(Checkpoint* out) const;
  Status RestoreCheckpoint(const Checkpoint& cp);

  // Introspection for the testlib invariant checks.
  bool IsFresh(size_t i) const { return fresh_[i] != 0; }
  /// \brief Current upper bound on d(i, mu_{cluster_of(i)}).
  double UpperBound(size_t i) const;
  /// \brief Current lower bound on min_{c != cluster_of(i)} d(i, mu_c)
  /// (the stage-1 global floor).
  double LowerBound(size_t i) const;
  /// \brief Current per-candidate lower bound on d(i, mu_c) (Elkan-style;
  /// what stage 2 uses).
  double CandidateLowerBound(size_t i, int c) const;
  /// \brief Stage 1's full lower bound on the best candidate delta,
  /// including the defensive margin (what the O(1) gate compares against
  /// -min_improvement; stage 2 refines it per candidate).
  double GateLowerBound(size_t i) const;

  double lambda() const { return lambda_; }

 private:
  // Shared by both gate stages (one definition of the removal factor).
  double RemovalUpperBound(size_t i, int from) const;

  const FairKMState* state_;
  double lambda_;
  double min_improvement_;
  size_t k_;

  // Bounds as of the last refresh, plus the drift stamps that age them, all
  // against the effective (live or snapshot) centroids:
  //   lb0_[i*k + c]  = d(i, mu_c) at refresh (sqrt of the exact evaluation's
  //                    clamped squared distance),
  //   drift_ref_[i*k + c] = cluster c's drift accumulator at refresh, so
  //     d(i, mu_c) >= lb0 - (drift_c - drift_ref)   [ages downward]
  //     d(i, mu_{own}) <= lb0[own] + (drift_own - drift_ref[own]).
  //   lbmin0_/max_drift_ref_: the stage-1 global floor min_{c != own} lb0,
  //     aged by the state's cumulative-max-step accumulator (sound for a
  //     min over clusters; see FairKMState::cumulative_max_step).
  std::vector<double> lb0_;
  std::vector<double> drift_ref_;
  std::vector<double> lbmin0_;
  std::vector<double> max_drift_ref_;
  std::vector<uint8_t> fresh_;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_PRUNING_H_
