#include "data/preprocess.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace fairkm {
namespace data {

StandardizationParams Standardize(Matrix* m) {
  StandardizationParams params;
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  params.means.assign(cols, 0.0);
  params.stddevs.assign(cols, 1.0);
  if (rows == 0) return params;
  for (size_t j = 0; j < cols; ++j) {
    RunningStats rs;
    for (size_t i = 0; i < rows; ++i) rs.Add(m->At(i, j));
    params.means[j] = rs.mean();
    // Population stddev keeps unit-variance exactness irrelevant here; use
    // sample stddev and guard constant columns.
    const double sd = rs.stddev();
    params.stddevs[j] = sd > 1e-12 ? sd : 1.0;
  }
  ApplyStandardization(params, m).Abort();
  return params;
}

Status ApplyStandardization(const StandardizationParams& params, Matrix* m) {
  if (params.means.size() != m->cols() || params.stddevs.size() != m->cols()) {
    return Status::InvalidArgument("standardization params do not match matrix width");
  }
  for (size_t j = 0; j < m->cols(); ++j) {
    const double mean = params.means[j];
    const double inv = 1.0 / params.stddevs[j];
    for (size_t i = 0; i < m->rows(); ++i) {
      m->At(i, j) = (m->At(i, j) - mean) * inv;
    }
  }
  return Status::OK();
}

MinMaxParams MinMaxNormalize(Matrix* m) {
  MinMaxParams params;
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  params.mins.assign(cols, 0.0);
  params.ranges.assign(cols, 1.0);
  if (rows == 0) return params;
  for (size_t j = 0; j < cols; ++j) {
    double lo = m->At(0, j), hi = m->At(0, j);
    for (size_t i = 1; i < rows; ++i) {
      lo = std::min(lo, m->At(i, j));
      hi = std::max(hi, m->At(i, j));
    }
    params.mins[j] = lo;
    params.ranges[j] = hi - lo > 1e-12 ? hi - lo : 1.0;
  }
  ApplyMinMax(params, m).Abort();
  return params;
}

Status ApplyMinMax(const MinMaxParams& params, Matrix* m) {
  if (params.mins.size() != m->cols() || params.ranges.size() != m->cols()) {
    return Status::InvalidArgument("min-max params do not match matrix width");
  }
  for (size_t j = 0; j < m->cols(); ++j) {
    const double lo = params.mins[j];
    const double inv = 1.0 / params.ranges[j];
    for (size_t i = 0; i < m->rows(); ++i) {
      m->At(i, j) = (m->At(i, j) - lo) * inv;
    }
  }
  return Status::OK();
}

Result<Dataset> UndersampleToParity(const Dataset& dataset,
                                    const std::string& class_column, Rng* rng) {
  FAIRKM_ASSIGN_OR_RETURN(const CategoricalColumn* col,
                          dataset.FindCategorical(class_column));
  const int card = col->cardinality();
  if (card == 0) return Status::InvalidArgument("class column has no categories");

  std::vector<std::vector<size_t>> by_class(static_cast<size_t>(card));
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    by_class[static_cast<size_t>(col->codes[i])].push_back(i);
  }
  size_t minority = dataset.num_rows();
  for (const auto& rows : by_class) {
    if (!rows.empty()) minority = std::min(minority, rows.size());
  }
  std::vector<size_t> keep;
  for (auto& rows : by_class) {
    if (rows.empty()) continue;
    if (rows.size() > minority) {
      std::vector<size_t> picked = rng->SampleWithoutReplacement(rows.size(), minority);
      std::sort(picked.begin(), picked.end());
      for (size_t p : picked) keep.push_back(rows[p]);
    } else {
      keep.insert(keep.end(), rows.begin(), rows.end());
    }
  }
  rng->Shuffle(&keep);
  return dataset.SelectRows(keep);
}

Result<Dataset> SampleRows(const Dataset& dataset, size_t count, Rng* rng) {
  if (count > dataset.num_rows()) {
    return Status::InvalidArgument("sample count exceeds dataset size");
  }
  std::vector<size_t> picked = rng->SampleWithoutReplacement(dataset.num_rows(), count);
  return dataset.SelectRows(picked);
}

}  // namespace data
}  // namespace fairkm
