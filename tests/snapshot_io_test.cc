// Durable model-snapshot round-trips: a trained export survives the disk
// bit-identically (a restarted server can Publish it before any retraining),
// and every corruption mode reads back as kDataLoss, never a crash or a
// silently wrong model.

#include "serve/snapshot_io.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/solver.h"
#include "serve/assign_service.h"
#include "serve/model_snapshot.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace serve {
namespace {

using core::FairKMOptions;
using core::FairKMSolver;
using core::ModelExport;
using testutil::MakeSeededWorld;
using testutil::SeededWorld;

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = (std::filesystem::temp_directory_path() /
            ("fairkm_snapshot_io_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(io::CreateDirectories(dir_).ok());
  }

  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

std::shared_ptr<const ModelSnapshot> TrainedSnapshot(const SeededWorld& world,
                                                     uint64_t version) {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_TRUE(solver.Init(uint64_t{29}).ok());
  EXPECT_TRUE(solver.Run().ok());
  return MakeModelSnapshot(solver, version).ValueOrDie();
}

void ExpectModelsEqual(const ModelExport& a, const ModelExport& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  EXPECT_EQ(a.d, b.d);
  EXPECT_EQ(a.stride, b.stride);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.config.normalize_domain, b.config.normalize_domain);
  EXPECT_EQ(a.config.weighting, b.config.weighting);
  EXPECT_EQ(a.counts, b.counts);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_EQ(a.centroids[i], b.centroids[i]) << "centroid element " << i;
  }
  EXPECT_EQ(a.centroid_norms, b.centroid_norms);
  EXPECT_EQ(a.moments.cat_counts, b.moments.cat_counts);
  EXPECT_EQ(a.moments.cat_u2, b.moments.cat_u2);
  EXPECT_EQ(a.moments.cat_uq, b.moments.cat_uq);
  EXPECT_EQ(a.moments.cat_q2, b.moments.cat_q2);
  EXPECT_EQ(a.moments.num_sums, b.moments.num_sums);
  ASSERT_EQ(a.categorical.size(), b.categorical.size());
  for (size_t i = 0; i < a.categorical.size(); ++i) {
    EXPECT_EQ(a.categorical[i].name, b.categorical[i].name);
    EXPECT_EQ(a.categorical[i].cardinality, b.categorical[i].cardinality);
    EXPECT_EQ(a.categorical[i].dataset_fractions,
              b.categorical[i].dataset_fractions);
    EXPECT_EQ(a.categorical[i].weight, b.categorical[i].weight);
  }
  ASSERT_EQ(a.numeric.size(), b.numeric.size());
  for (size_t i = 0; i < a.numeric.size(); ++i) {
    EXPECT_EQ(a.numeric[i].name, b.numeric[i].name);
    EXPECT_EQ(a.numeric[i].dataset_mean, b.numeric[i].dataset_mean);
    EXPECT_EQ(a.numeric[i].weight, b.numeric[i].weight);
  }
}

TEST_F(SnapshotIoTest, RoundTripIsBitIdenticalAndServable) {
  const SeededWorld world = MakeSeededWorld(400);
  const SeededWorld fresh = MakeSeededWorld(401);
  const auto snapshot = TrainedSnapshot(world, /*version=*/42);
  const std::string path = Path("model.fkms");
  ASSERT_TRUE(WriteModelSnapshot(path, *snapshot).ok());

  const auto loaded = ReadModelSnapshot(path).ValueOrDie();
  EXPECT_EQ(loaded->version(), 42u);
  ExpectModelsEqual(snapshot->model(), loaded->model());

  // The restored model serves exactly what the original would.
  AssignService original, restored;
  original.Publish(snapshot);
  restored.Publish(loaded);
  EXPECT_EQ(original.Assign(fresh.points, &fresh.sensitive).ValueOrDie(),
            restored.Assign(fresh.points, &fresh.sensitive).ValueOrDie());
}

TEST_F(SnapshotIoTest, MissingFileIsNotFound) {
  const auto result = ReadModelSnapshot(Path("absent.fkms"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotIoTest, CorruptFilesAreDataLoss) {
  const SeededWorld world = MakeSeededWorld(402);
  const auto snapshot = TrainedSnapshot(world, /*version=*/1);
  const std::string path = Path("model.fkms");
  ASSERT_TRUE(WriteModelSnapshot(path, *snapshot).ok());
  std::string image;
  ASSERT_TRUE(io::ReadFile(path, &image, "test").ok());

  // Truncations at a spread of prefixes.
  for (size_t keep = 0; keep < image.size();
       keep += 1 + image.size() / 13) {
    const std::string torn = Path("torn.fkms");
    ASSERT_TRUE(io::AtomicWriteFile(torn, image.substr(0, keep), "test").ok());
    const auto result = ReadModelSnapshot(torn);
    ASSERT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "kept " << keep << " bytes";
  }

  // Bit flips at a spread of offsets.
  for (size_t pos = 0; pos < image.size(); pos += 1 + image.size() / 29) {
    std::string flipped = image;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    const std::string bad = Path("flipped.fkms");
    ASSERT_TRUE(io::AtomicWriteFile(bad, flipped, "test").ok());
    const auto result = ReadModelSnapshot(bad);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << pos;
  }
}

TEST_F(SnapshotIoTest, InjectedTornRenameReadsAsDataLoss) {
  const SeededWorld world = MakeSeededWorld(403);
  const auto snapshot = TrainedSnapshot(world, /*version=*/1);
  const std::string path = Path("model.fkms");

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kTornRename;
  spec.max_fires = 1;
  fault::Arm("snapshot.rename", spec);
  // The torn rename is silent — exactly like a crash mid-replace.
  ASSERT_TRUE(WriteModelSnapshot(path, *snapshot).ok());

  const auto result = ReadModelSnapshot(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);

  // A clean rewrite heals the file.
  ASSERT_TRUE(WriteModelSnapshot(path, *snapshot).ok());
  EXPECT_TRUE(ReadModelSnapshot(path).ok());
}

TEST_F(SnapshotIoTest, InjectedWriteErrorLeavesOldSnapshotIntact) {
  const SeededWorld world = MakeSeededWorld(404);
  const auto v1 = TrainedSnapshot(world, /*version=*/1);
  const auto v2 = TrainedSnapshot(world, /*version=*/2);
  const std::string path = Path("model.fkms");
  ASSERT_TRUE(WriteModelSnapshot(path, *v1).ok());

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kError;
  spec.code = StatusCode::kIOError;
  spec.max_fires = 1;
  fault::Arm("snapshot.fsync", spec);
  const Status st = WriteModelSnapshot(path, *v2);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);

  // The failed replace never touched the published file.
  EXPECT_EQ(ReadModelSnapshot(path).ValueOrDie()->version(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace fairkm
