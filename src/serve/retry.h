// RetryPolicy — client-side companion to the serving tier's load shedding.
//
// When AssignService sheds a request (kUnavailable: queue full, queue
// timeout, model not yet published) the right client response is to back off
// and try again; when it returns kDeadlineExceeded or a real error, retrying
// is wrong (the budget is spent / the request itself is bad). RetryPolicy
// encodes that split plus jittered exponential backoff, so every caller does
// not reinvent it subtly differently:
//
//   RetryPolicy policy;            // 4 attempts, 1ms..100ms, full jitter
//   Rng rng(seed);
//   auto result = AssignWithRetry(service, points, sensitive, {}, policy, &rng);
//
// Jitter is drawn from the caller's Rng, keeping retries deterministic under
// a fixed seed (and desynchronized across clients with distinct seeds — no
// thundering-herd resonance).

#ifndef FAIRKM_SERVE_RETRY_H_
#define FAIRKM_SERVE_RETRY_H_

#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "serve/assign_service.h"

namespace fairkm {
namespace serve {

/// \brief Jittered exponential backoff schedule.
///
/// Durations follow the repo-wide convention: wall-clock seconds as a
/// `double`, named `*_seconds` (so the defaults below read 1 ms and 100 ms).
struct RetryPolicy {
  /// Total tries, including the first (so 1 disables retrying).
  int max_attempts = 4;
  /// Backoff ceiling for attempt i (1-based retry index): the sleep is drawn
  /// uniformly from [0, min(initial * multiplier^(i-1), max)] — "full
  /// jitter", which empirically spreads synchronized retry storms best.
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;
};

/// \brief True for statuses that a backoff-and-retry loop should absorb.
///
/// Only kUnavailable qualifies: the service explicitly said "not now, maybe
/// soon". kDeadlineExceeded means the caller's budget is gone; everything
/// else means the request or the model is at fault and will fail again.
bool IsRetryable(const Status& status);

/// \brief Backoff ceiling (seconds) before retry number `retry` (1-based).
double BackoffCeilingSeconds(const RetryPolicy& policy, int retry);

/// \brief Assign with shed-aware retries.
///
/// Calls service.Assign up to policy.max_attempts times, sleeping a jittered
/// backoff (drawn from *rng) between attempts, and only when the failure is
/// retryable. Returns the first success or the last status observed.
Result<cluster::Assignment> AssignWithRetry(
    AssignService& service, const data::Matrix& points,
    const data::SensitiveView* sensitive, const AssignRequestOptions& request,
    const RetryPolicy& policy, Rng* rng);

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_RETRY_H_
