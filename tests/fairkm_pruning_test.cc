// Pruning correctness: the bound-gated sweep (core/pruning.h) must walk
// trajectories bit-identical to the exhaustive sweep — same move sequence,
// same assignment, same per-sweep objective values — across every SweepMode
// and both kernel backends, and its bounds must never be violated
// (testlib/brute_force.h's PrunerBoundsHold invariant) under arbitrary move
// sequences.

#include "core/pruning.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fairkm.h"
#include "core/fairkm_state.h"
#include "core/kernels/kernels.h"
#include "testlib/brute_force.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace testutil {
namespace {

core::FairKMResult RunWorld(const SeededWorld& world,
                            const core::FairKMOptions& options, uint64_t seed) {
  Rng rng(seed);
  auto result = RunFairKMSession(world.points, world.sensitive, options, &rng);
  if (!result.ok()) {
    ADD_FAILURE() << "optimizer error: " << result.status().ToString();
    return core::FairKMResult{};
  }
  return result.MoveValueUnsafe();
}

// The bit-identity claim: identical assignment, iteration count, convergence
// flag, and (since identical moves produce identical aggregates) bitwise
// identical per-sweep objective values.
void ExpectBitIdentical(const core::FairKMResult& pruned,
                        const core::FairKMResult& exact) {
  EXPECT_EQ(pruned.assignment, exact.assignment);
  EXPECT_EQ(pruned.iterations, exact.iterations);
  EXPECT_EQ(pruned.converged, exact.converged);
  ASSERT_EQ(pruned.objective_history.size(), exact.objective_history.size());
  for (size_t s = 0; s < exact.objective_history.size(); ++s) {
    EXPECT_EQ(pruned.objective_history[s], exact.objective_history[s])
        << "sweep " << s;
  }
}

struct ModeConfig {
  const char* name;
  int minibatch;
  core::SweepMode sweep_mode;
  int threads;
};

const ModeConfig kModes[] = {
    {"serial", 0, core::SweepMode::kSerial, 0},
    {"serial-minibatch", 16, core::SweepMode::kSerial, 0},
    {"parallel-snapshot", 16, core::SweepMode::kParallelSnapshot, 2},
};

// These suites test pruning itself, so they must see it enabled even under
// the CI pruning-off job (which exports FAIRKM_DISABLE_PRUNING=1 to run the
// *rest* of the suite on the exact path).
void ClearPruningEnv() { ::unsetenv("FAIRKM_DISABLE_PRUNING"); }

class PruningBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ClearPruningEnv();
    // Param = force the scalar backend (vs whatever runtime dispatch picks).
    core::kernels::SetActiveBackend(
        GetParam() ? &core::kernels::ScalarBackend() : nullptr);
  }
  void TearDown() override { core::kernels::SetActiveBackend(nullptr); }
};

TEST_P(PruningBackendTest, TrajectoryBitIdenticalAcrossSweepModes) {
  WorldSpec spec;
  spec.blobs = 4;
  spec.per_blob = 30;
  spec.k = 4;
  for (uint64_t seed : {11u, 57u, 4242u}) {
    const SeededWorld world = MakeSeededWorld(seed, spec);
    for (const ModeConfig& mode : kModes) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " mode " << mode.name);
      core::FairKMOptions options;
      options.k = world.k;
      options.max_iterations = 15;
      options.minibatch_size = mode.minibatch;
      options.sweep_mode = mode.sweep_mode;
      options.num_threads = mode.threads;
      options.enable_pruning = true;
      const core::FairKMResult pruned = RunWorld(world, options, seed);
      options.enable_pruning = false;
      const core::FairKMResult exact = RunWorld(world, options, seed);
      EXPECT_TRUE(pruned.pruning_enabled);
      EXPECT_FALSE(exact.pruning_enabled);
      ExpectBitIdentical(pruned, exact);
    }
  }
}

TEST_P(PruningBackendTest, TrajectoryBitIdenticalWithWeightsAndAblations) {
  WorldSpec spec;
  spec.categorical_attrs = 3;
  spec.numeric_attrs = 2;
  spec.random_weights = true;
  for (uint64_t seed : {7u, 99u}) {
    const SeededWorld world = MakeSeededWorld(seed, spec);
    for (core::ClusterWeighting weighting :
         {core::ClusterWeighting::kSquaredFraction,
          core::ClusterWeighting::kFractional,
          core::ClusterWeighting::kUnweighted}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << " weighting "
                   << static_cast<int>(weighting));
      core::FairKMOptions options;
      options.k = world.k;
      options.max_iterations = 12;
      options.fairness.weighting = weighting;
      options.fairness.normalize_domain =
          weighting != core::ClusterWeighting::kFractional;
      options.enable_pruning = true;
      const core::FairKMResult pruned = RunWorld(world, options, seed);
      options.enable_pruning = false;
      const core::FairKMResult exact = RunWorld(world, options, seed);
      ExpectBitIdentical(pruned, exact);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PruningBackendTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "scalar" : "dispatch";
                         });

TEST(FairKMPruningTest, PrunesMostCandidatesOnceSettled) {
  ClearPruningEnv();
  WorldSpec spec;
  spec.blobs = 4;
  spec.per_blob = 40;
  spec.k = 4;
  const SeededWorld world = MakeSeededWorld(5, spec);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 30;
  const core::FairKMResult result = RunWorld(world, options, 5);
  EXPECT_TRUE(result.pruning_enabled);
  EXPECT_GT(result.total_candidates, 0u);
  // Blob worlds settle within a few sweeps, so the bulk of the candidate
  // volume sits in the (never-gated) first sweep — the fraction here is a
  // smoke floor, not the perf claim; BENCH_scaling.json gates the real
  // workloads (>= 50% on Adult, ~80% on the d=64 synthetic world).
  EXPECT_GT(result.PrunedFraction(), 0.1) << result.pruned_candidates << "/"
                                          << result.total_candidates;
  EXPECT_GT(result.sweep_seconds, 0.0);
}

TEST(FairKMPruningTest, DisableFlagAndEnvAreHonored) {
  ClearPruningEnv();
  const SeededWorld world = MakeSeededWorld(21);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 5;
  options.enable_pruning = false;
  core::FairKMResult result = RunWorld(world, options, 21);
  EXPECT_FALSE(result.pruning_enabled);
  EXPECT_EQ(result.pruned_candidates, 0u);

  ASSERT_FALSE(core::PruningDisabledByEnv());
  ::setenv("FAIRKM_DISABLE_PRUNING", "1", 1);
  EXPECT_TRUE(core::PruningDisabledByEnv());
  options.enable_pruning = true;
  result = RunWorld(world, options, 21);
  EXPECT_FALSE(result.pruning_enabled);
  ::unsetenv("FAIRKM_DISABLE_PRUNING");
  EXPECT_FALSE(core::PruningDisabledByEnv());
  result = RunWorld(world, options, 21);
  EXPECT_TRUE(result.pruning_enabled);
}

// Drives a bound-tracking state + pruner through the sweep protocol
// (refresh via tracked evaluation, moves via the exact argmin, invalidation
// on move) interleaved with ADVERSARIAL random moves, checking the testlib
// bound invariant throughout.
class PruningInvariantTest : public ::testing::TestWithParam<bool> {};

TEST_P(PruningInvariantTest, BoundsNeverViolatedUnderMoveSequences) {
  const bool snapshot = GetParam();
  WorldSpec spec;
  spec.categorical_attrs = 2;
  spec.numeric_attrs = 1;
  for (uint64_t seed : {3u, 404u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed << " snapshot " << snapshot);
    SeededWorld world = MakeSeededWorld(seed, spec);
    auto state = core::FairKMState::Create(&world.points, &world.sensitive,
                                           world.k, world.assignment)
                     .ValueOrDie();
    state.EnablePrototypeSnapshot(snapshot);
    state.EnableBoundTracking(true);
    const double lambda = core::SuggestLambda(state.num_rows(), world.k);
    const double min_improvement = 1e-9;
    core::SweepPruner pruner(&state, lambda, min_improvement);

    Rng rng(seed ^ 0xBEEF);
    std::vector<double> km(static_cast<size_t>(world.k));
    std::vector<double> dists(static_cast<size_t>(world.k));
    const size_t n = state.num_rows();
    for (int round = 0; round < 4; ++round) {
      // A sweep-like pass: gate, evaluate survivors, move improvers.
      for (size_t i = 0; i < n; ++i) {
        if (pruner.ShouldPrune(i)) continue;
        state.DeltaKMeansAllClusters(i, km.data(), dists.data());
        pruner.Refresh(i, dists.data());
        int best = state.cluster_of(i);
        double best_delta = -min_improvement;
        for (int c = 0; c < world.k; ++c) {
          if (c == state.cluster_of(i)) continue;
          const double delta =
              km[static_cast<size_t>(c)] + lambda * state.DeltaFairness(i, c);
          if (delta < best_delta) {
            best_delta = delta;
            best = c;
          }
        }
        if (best != state.cluster_of(i)) {
          state.Move(i, best);
          pruner.Invalidate(i);
        }
      }
      if (snapshot) state.RefreshPrototypes();
      ASSERT_TRUE(PrunerBoundsHold(state, pruner, lambda, min_improvement));
      // Adversarial churn between passes: arbitrary moves the optimizer
      // would never make, exercising drift accumulation and bound aging.
      for (const MoveOp& op : RandomMoveSequence(n / 4, n, world.k, &rng)) {
        if (op.to == state.cluster_of(op.point)) continue;
        state.Move(op.point, op.to);
        pruner.Invalidate(op.point);
      }
      if (snapshot && rng.Bernoulli(0.5)) state.RefreshPrototypes();
      ASSERT_TRUE(PrunerBoundsHold(state, pruner, lambda, min_improvement));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PruningInvariantTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "snapshot" : "live";
                         });

// The cached objective terms behind the per-sweep history must agree with
// the scratch recomputation they replaced.
TEST(FairKMPruningTest, CachedObjectiveTermsMatchScratch) {
  const SeededWorld world = MakeSeededWorld(63);
  auto state = core::FairKMState::Create(&world.points, &world.sensitive,
                                         world.k, world.assignment)
                   .ValueOrDie();
  Rng rng(63);
  for (const MoveOp& op : RandomMoveSequence(100, state.num_rows(), world.k, &rng)) {
    state.Move(op.point, op.to);
  }
  EXPECT_NEAR(state.KMeansTermCached(), state.KMeansTerm(),
              1e-9 * std::max(1.0, state.KMeansTerm()));
  EXPECT_NEAR(state.FairnessTermCached(), state.FairnessTerm(),
              1e-9 * std::max(1.0, state.FairnessTerm()));
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
