// Scaling and micro benchmarks (google-benchmark) backing the paper's §4.3.1
// complexity discussion:
//   * FairKM wall time vs dataset size (the incremental optimizer is
//     O(n k (d + sum_S m_S)) per sweep, not the naive quadratic form),
//   * FairKM wall time vs feature dimensionality d on synthetic tf-idf-like
//     data (the ROADMAP's d-scaling axis — where the GEMV kernels and the
//     bound-gated pruning pay most),
//   * bound-gated pruning vs the exhaustive sweep (bit-identical
//     trajectories; the pruned_fraction counter records how many candidate
//     evaluations the gate rejected),
//   * fast incremental deltas vs naive full-objective recomputation,
//   * FairKM vs K-Means vs ZGYA (hard and soft) at a fixed size,
//   * single move-delta evaluation cost.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/kmeans.h"
#include "cluster/zgya.h"
#include "common/rng.h"
#include "core/fairkm.h"
#include "core/fairkm_naive.h"
#include "core/fairkm_state.h"
#include "common/timer.h"
#include "core/kernels/kernels.h"
#include "core/sharded_sweep.h"
#include "core/solver.h"
#include "data/point_store.h"
#include "data/preprocess.h"
#include "online/online_fairkm.h"
#include "serve/assign_batch.h"
#include "serve/model_snapshot.h"

namespace {

using namespace fairkm;


// The solver-session equivalent of the retired RunFairKM wrapper — same
// draws, same trajectory; one Create + Init + Run + CurrentResult per call.
Result<core::FairKMResult> RunSession(const data::Matrix& points,
                                      const data::SensitiveView& sensitive,
                                      const core::FairKMOptions& options,
                                      Rng* rng) {
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run());
  (void)stop;
  return solver.CurrentResult();
}

const exp::ExperimentData& AdultSlice(size_t rows) {
  static std::map<size_t, std::unique_ptr<exp::ExperimentData>> cache;
  auto& slot = cache[rows];
  if (!slot) {
    exp::AdultExperimentOptions options;
    options.subsample = rows;
    slot = std::make_unique<exp::ExperimentData>(
        exp::LoadAdultExperiment(options).ValueOrDie());
  }
  return *slot;
}

// Synthetic tf-idf-like world for the d-scaling axis: sparse non-negative
// skewed features with latent topic structure (each topic loads on its own
// subset of dimensions, plus background noise), and three categorical
// sensitive attributes with skewed marginals. Pure function of (n, d).
struct SyntheticWorldData {
  data::Matrix features;
  data::SensitiveView sensitive;
};

const SyntheticWorldData& SyntheticWorld(size_t n, size_t d) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<SyntheticWorldData>>
      cache;
  auto& slot = cache[{n, d}];
  if (slot) return *slot;
  slot = std::make_unique<SyntheticWorldData>();
  Rng rng(0xD5CA11 + n * 31 + d);
  const size_t topics = 8;
  slot->features = data::Matrix(n, d);
  for (size_t i = 0; i < n; ++i) {
    const size_t topic = rng.UniformInt(static_cast<uint64_t>(topics));
    double* row = slot->features.Row(i);
    for (size_t j = 0; j < d; ++j) {
      if (j % topics == topic) {
        row[j] = rng.UniformDouble(0.5, 2.0);  // On-topic term weight.
      } else if (rng.Bernoulli(0.1)) {
        row[j] = rng.UniformDouble(0.0, 0.3);  // Background term.
      }
    }
  }
  const int cards[3] = {2, 4, 8};
  for (int a = 0; a < 3; ++a) {
    data::CategoricalSensitive attr;
    attr.name = "attr" + std::to_string(a);
    attr.cardinality = cards[a];
    attr.codes.resize(n);
    std::vector<int64_t> counts(static_cast<size_t>(cards[a]), 0);
    for (size_t i = 0; i < n; ++i) {
      // Skewed marginal: value 0 as likely as all other values combined.
      const bool head = rng.Bernoulli(0.5);
      const int32_t v =
          head ? 0
               : static_cast<int32_t>(
                     1 + rng.UniformInt(static_cast<uint64_t>(cards[a] - 1)));
      attr.codes[i] = v;
      ++counts[static_cast<size_t>(v)];
    }
    attr.dataset_fractions.resize(static_cast<size_t>(cards[a]));
    for (int s = 0; s < cards[a]; ++s) {
      attr.dataset_fractions[static_cast<size_t>(s)] =
          static_cast<double>(counts[static_cast<size_t>(s)]) /
          static_cast<double>(n);
    }
    slot->sensitive.categorical.push_back(std::move(attr));
  }
  return *slot;
}

// One full FairKM run over a synthetic world; shared body of the d-scaling
// axis and the pruned-vs-exact gate pair. Reports the pruned-candidate
// fraction (and the sweep share of wall time) as user counters.
void FairKMSweepBody(benchmark::State& state, size_t n, size_t d, bool prune) {
  const auto& world = SyntheticWorld(n, d);
  core::FairKMOptions options;
  options.k = 8;
  options.lambda = core::SuggestLambda(n, options.k);
  // The paper's protocol runs 30 sweeps without a convergence cut-off
  // (§5.4); that is also where pruning pays — later sweeps are nearly all
  // gated once the assignment settles.
  options.max_iterations = 30;
  options.enable_pruning = prune;
  double pruned_fraction = 0.0, sweep_seconds = 0.0;
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(world.features, world.sensitive, options, &rng);
    const core::FairKMResult& r = result.ValueOrDie();
    pruned_fraction = r.PrunedFraction();
    sweep_seconds = r.sweep_seconds;
    benchmark::DoNotOptimize(result.ok());
  }
  state.counters["pruned_fraction"] = pruned_fraction;
  state.counters["sweep_seconds"] = sweep_seconds;
}

// The ROADMAP d-scaling axis: same row count, growing feature width. The
// default (pruned) path; recorded per-d in BENCH_scaling.json.
void BM_FairKM_Sweep(benchmark::State& state) {
  FairKMSweepBody(state, 8192, static_cast<size_t>(state.range(0)),
                  /*prune=*/true);
}
BENCHMARK(BM_FairKM_Sweep)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// The pruning gate pair (d = 64, n = 50k): tools/bench_json.sh requires
// Exact/Pruned >= MIN_PRUNE_SPEEDUP. Trajectories are bit-identical; only
// the number of candidate evaluations differs.
void BM_FairKM_Sweep_d64_Pruned(benchmark::State& state) {
  FairKMSweepBody(state, 50000, 64, /*prune=*/true);
}
BENCHMARK(BM_FairKM_Sweep_d64_Pruned)->Unit(benchmark::kMillisecond);

void BM_FairKM_Sweep_d64_Exact(benchmark::State& state) {
  FairKMSweepBody(state, 50000, 64, /*prune=*/false);
}
BENCHMARK(BM_FairKM_Sweep_d64_Exact)->Unit(benchmark::kMillisecond);

// Multi-seed session pair: the paper's §5.5.1 protocol runs many seeds per
// configuration. _Cold constructs a fresh FairKMSolver per seed — the
// pre-session-API behaviour, rebuilding and reallocating the aligned point
// store, norm caches, fairness/bound tables, pruner and batch scratch every
// time. _Reused creates ONE solver and re-Inits it per seed (allocation-free
// after the first). Trajectories are bit-identical
// (fairkm_solver_test.SolverReuseAcrossSeedsMatchesColdSolvers); only the
// per-seed setup work differs, which is what tools/bench_json.sh gates on
// (Cold/Reused >= MIN_REUSE_SPEEDUP). Few sweeps per run keep the bench in
// the regime where per-seed setup is a visible fraction of the work — a
// hyper-parameter search or serving-style re-fit, not a 30-sweep paper run.
constexpr size_t kMultiSeedN = 8192;
constexpr size_t kMultiSeedD = 64;
constexpr uint64_t kMultiSeedSeeds = 6;

core::FairKMOptions MultiSeedOptions() {
  core::FairKMOptions options;
  options.k = 8;
  options.lambda = core::SuggestLambda(kMultiSeedN, options.k);
  options.max_iterations = 3;
  return options;
}

void BM_FairKM_MultiSeed_Cold(benchmark::State& state) {
  const auto& world = SyntheticWorld(kMultiSeedN, kMultiSeedD);
  const core::FairKMOptions options = MultiSeedOptions();
  for (auto _ : state) {
    for (uint64_t seed = 1; seed <= kMultiSeedSeeds; ++seed) {
      auto solver =
          core::FairKMSolver::Create(&world.features, &world.sensitive, options)
              .ValueOrDie();
      solver.Init(seed).Abort();
      solver.Run().ValueOrDie();
      benchmark::DoNotOptimize(solver.assignment().data());
    }
  }
}
BENCHMARK(BM_FairKM_MultiSeed_Cold)->Unit(benchmark::kMillisecond);

void BM_FairKM_MultiSeed_Reused(benchmark::State& state) {
  const auto& world = SyntheticWorld(kMultiSeedN, kMultiSeedD);
  const core::FairKMOptions options = MultiSeedOptions();
  for (auto _ : state) {
    auto solver =
        core::FairKMSolver::Create(&world.features, &world.sensitive, options)
            .ValueOrDie();
    for (uint64_t seed = 1; seed <= kMultiSeedSeeds; ++seed) {
      solver.Init(seed).Abort();
      solver.Run().ValueOrDie();
      benchmark::DoNotOptimize(solver.assignment().data());
    }
  }
}
BENCHMARK(BM_FairKM_MultiSeed_Reused)->Unit(benchmark::kMillisecond);

// Serving-path pair (n = 8192, d = 64, k = 8): _Scalar scores out-of-sample
// points one at a time through FairKMSolver::Assign (naive per-candidate
// distance loop); _Batched scores the same points through serve::AssignBatch
// over a frozen ModelSnapshot — one GemvAligned pass per point against all k
// centroids with the expanded-form distance and cached ||mu||^2. Assignments
// are bit-identical (tests/serve_assign_test.cc); tools/bench_json.sh gates
// Scalar/Batched >= MIN_ASSIGN_SPEEDUP. Both report points_per_sec.
constexpr size_t kAssignN = 8192;
constexpr size_t kAssignD = 64;

struct AssignBenchModel {
  core::FairKMSolver solver;
  std::shared_ptr<const serve::ModelSnapshot> snapshot;
};

AssignBenchModel& AssignModel() {
  static AssignBenchModel* cached = [] {
    const auto& world = SyntheticWorld(kAssignN, kAssignD);
    core::FairKMOptions options;
    options.k = 8;
    options.lambda = core::SuggestLambda(kAssignN, options.k);
    options.max_iterations = 3;
    auto* model = new AssignBenchModel{
        core::FairKMSolver::Create(&world.features, &world.sensitive, options)
            .ValueOrDie(),
        nullptr};
    model->solver.Init(uint64_t{1}).Abort();
    model->solver.Run().ValueOrDie();
    model->snapshot = serve::MakeModelSnapshot(model->solver).ValueOrDie();
    return model;
  }();
  return *cached;
}

void BM_Assign_Scalar(benchmark::State& state) {
  AssignBenchModel& model = AssignModel();
  const auto& world = SyntheticWorld(kAssignN, kAssignD);
  size_t points = 0;
  Timer timer;
  for (auto _ : state) {
    auto assigned = model.solver.Assign(world.features).ValueOrDie();
    points += assigned.size();
    benchmark::DoNotOptimize(assigned.data());
  }
  const double seconds = timer.ElapsedSeconds();
  state.counters["points_per_sec"] =
      seconds > 0.0 ? static_cast<double>(points) / seconds : 0.0;
}
BENCHMARK(BM_Assign_Scalar)->Unit(benchmark::kMillisecond);

void BM_Assign_Batched(benchmark::State& state) {
  AssignBenchModel& model = AssignModel();
  const auto& world = SyntheticWorld(kAssignN, kAssignD);
  serve::AssignScratch scratch;
  size_t points = 0;
  Timer timer;
  for (auto _ : state) {
    auto assigned =
        serve::AssignBatch(*model.snapshot, world.features, nullptr, &scratch)
            .ValueOrDie();
    points += assigned.size();
    benchmark::DoNotOptimize(assigned.data());
  }
  const double seconds = timer.ElapsedSeconds();
  state.counters["points_per_sec"] =
      seconds > 0.0 ? static_cast<double>(points) / seconds : 0.0;
}
BENCHMARK(BM_Assign_Batched)->Unit(benchmark::kMillisecond);

void BM_FairKM_DatasetSize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& data = AdultSlice(n);
  core::FairKMOptions options;
  options.k = 5;
  options.lambda = core::SuggestLambda(n, 5);
  options.max_iterations = 10;
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FairKM_DatasetSize)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_FairKM_Fast(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& data = AdultSlice(n);
  core::FairKMOptions options;
  options.k = 4;
  options.lambda = core::SuggestLambda(n, 4);
  options.max_iterations = 5;
  for (auto _ : state) {
    Rng rng(7);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FairKM_Fast)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_FairKM_NaiveReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& data = AdultSlice(n);
  core::FairKMOptions options;
  options.k = 4;
  options.lambda = core::SuggestLambda(n, 4);
  options.max_iterations = 5;
  for (auto _ : state) {
    Rng rng(7);
    auto result =
        core::RunFairKMNaive(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FairKM_NaiveReference)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_KMeansBlind(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  cluster::KMeansOptions options;
  options.k = 5;
  for (auto _ : state) {
    Rng rng(42);
    auto result = cluster::RunKMeans(data.features, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_KMeansBlind)->Unit(benchmark::kMillisecond);

// The Adult multi-attribute regime, default (pruned) path. The
// pruned_fraction counter is the tools/bench_json.sh gate anchor for "the
// bounds actually bite on the paper's own workload".
void BM_FairKM_AllAttributes(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  core::FairKMOptions options;
  options.k = 5;
  options.lambda = data.paper_lambda;
  double pruned_fraction = 0.0;
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    pruned_fraction = result.ValueOrDie().PrunedFraction();
    benchmark::DoNotOptimize(result.ok());
  }
  state.counters["pruned_fraction"] = pruned_fraction;
}
BENCHMARK(BM_FairKM_AllAttributes)->Unit(benchmark::kMillisecond);

// Same config with pruning disabled — the exact-path anchor that keeps the
// Adult pair comparable PR over PR.
void BM_FairKM_AllAttributes_Exact(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  core::FairKMOptions options;
  options.k = 5;
  options.lambda = data.paper_lambda;
  options.enable_pruning = false;
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FairKM_AllAttributes_Exact)->Unit(benchmark::kMillisecond);

void BM_FairKM_MiniBatch(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  core::FairKMOptions options;
  options.k = 5;
  options.lambda = data.paper_lambda;
  options.minibatch_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FairKM_MiniBatch)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ZgyaHard(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  cluster::ZgyaOptions options;
  options.k = 5;
  options.mode = cluster::ZgyaOptions::Mode::kHardMoves;
  for (auto _ : state) {
    Rng rng(42);
    auto result = cluster::RunZgya(data.features, data.sensitive.categorical[3],
                                   options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ZgyaHard)->Unit(benchmark::kMillisecond);

void BM_ZgyaSoft(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  cluster::ZgyaOptions options;
  options.k = 5;
  options.mode = cluster::ZgyaOptions::Mode::kSoftVariational;
  for (auto _ : state) {
    Rng rng(42);
    auto result = cluster::RunZgya(data.features, data.sensitive.categorical[3],
                                   options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ZgyaSoft)->Unit(benchmark::kMillisecond);

// Candidate-evaluation kernels, before/after: one full sweep's worth of
// evaluations (every point x every candidate cluster, k = 5, 2000-row Adult
// slice, all sensitive attributes — the paper's multi-attribute regime).
// _Reference uses the pre-optimization kernels (O(d) two-distance K-Means +
// O(sum_S m_S) fairness loops); _DeltaKernels uses the batched
// DeltaKMeansAllClusters pass + the O(1)-per-attribute fairness closed form.
// tools/bench_json.sh records this pair in BENCH_scaling.json as the perf
// trajectory anchor.
core::FairKMState MakeAdultState(const exp::ExperimentData& data, int k) {
  Rng rng(3);
  cluster::Assignment initial(data.features.rows());
  for (auto& a : initial) {
    a = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(k)));
  }
  return core::FairKMState::Create(&data.features, &data.sensitive, k, initial)
      .ValueOrDie();
}

void BM_SweepCandidates_Reference(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  const int k = 5;
  const core::FairKMState fairness_state = MakeAdultState(data, k);
  const size_t n = data.features.rows();
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        acc += fairness_state.ReferenceDeltaKMeans(i, c) +
               fairness_state.ReferenceDeltaFairness(i, c);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SweepCandidates_Reference)->Unit(benchmark::kMillisecond);

// Shared body for the delta-kernel sweep: `backend` pins the kernel backend
// for the run (nullptr = whatever runtime dispatch picked). The _Scalar
// variant vs the dispatch variant is the scalar-vs-SIMD anchor pair that
// tools/bench_json.sh gates on.
void SweepDeltaKernels(benchmark::State& state,
                       const core::kernels::Backend* backend) {
  core::kernels::SetActiveBackend(backend);
  const auto& data = AdultSlice(2000);
  const int k = 5;
  const core::FairKMState fairness_state = MakeAdultState(data, k);
  const size_t n = data.features.rows();
  std::vector<double> km(static_cast<size_t>(k));
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      fairness_state.DeltaKMeansAllClusters(i, km.data());
      for (int c = 0; c < k; ++c) {
        acc += km[static_cast<size_t>(c)] + fairness_state.DeltaFairness(i, c);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  core::kernels::SetActiveBackend(nullptr);
}

void BM_SweepCandidates_DeltaKernels(benchmark::State& state) {
  SweepDeltaKernels(state, nullptr);
}
BENCHMARK(BM_SweepCandidates_DeltaKernels)->Unit(benchmark::kMillisecond);

void BM_SweepCandidates_DeltaKernels_Scalar(benchmark::State& state) {
  SweepDeltaKernels(state, &core::kernels::ScalarBackend());
}
BENCHMARK(BM_SweepCandidates_DeltaKernels_Scalar)->Unit(benchmark::kMillisecond);

// Kernel-level micro benches: the blocked GEMV (x . S_c for all clusters in
// one pass) and the fairness-moment kernel, scalar backend vs whatever
// runtime dispatch selected. Arg = inner dimension (features d for GEMV,
// attribute cardinality m for CatMoments); k is fixed at 16 rows so the
// two-row blocking in the AVX2 GEMV is exercised.
void KernelGemvLoop(benchmark::State& state,
                    const core::kernels::Backend& backend) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t k = 16;
  Rng rng(11);
  std::vector<double> x(d), mat(k * d), out(k);
  for (auto& v : x) v = rng.UniformDouble(-1.0, 1.0);
  for (auto& v : mat) v = rng.UniformDouble(-1.0, 1.0);
  for (auto _ : state) {
    backend.Gemv(x.data(), mat.data(), k, d, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}

void BM_KernelGemv_Scalar(benchmark::State& state) {
  KernelGemvLoop(state, core::kernels::ScalarBackend());
}
BENCHMARK(BM_KernelGemv_Scalar)->Arg(8)->Arg(64)->Arg(256);

void BM_KernelGemv_Dispatch(benchmark::State& state) {
  KernelGemvLoop(state, core::kernels::ActiveBackend());
}
BENCHMARK(BM_KernelGemv_Dispatch)->Arg(8)->Arg(64)->Arg(256);

void KernelCatMomentsLoop(benchmark::State& state,
                          const core::kernels::Backend& backend) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<int64_t> counts(m);
  std::vector<double> fractions(m, 1.0 / static_cast<double>(m));
  for (auto& c : counts) {
    c = rng.UniformInt(int64_t{0}, int64_t{4000});
  }
  double u2 = 0.0, uq = 0.0;
  for (auto _ : state) {
    backend.CatMoments(counts.data(), fractions.data(), m, 4000.0, &u2, &uq);
    benchmark::DoNotOptimize(u2);
    benchmark::DoNotOptimize(uq);
  }
}

void BM_KernelCatMoments_Scalar(benchmark::State& state) {
  KernelCatMomentsLoop(state, core::kernels::ScalarBackend());
}
BENCHMARK(BM_KernelCatMoments_Scalar)->Arg(8)->Arg(42);

void BM_KernelCatMoments_Dispatch(benchmark::State& state) {
  KernelCatMomentsLoop(state, core::kernels::ActiveBackend());
}
BENCHMARK(BM_KernelCatMoments_Dispatch)->Arg(8)->Arg(42);

// Zero-work marker whose *name* records the dispatch-selected backend, so
// BENCH_scaling.json documents which backend produced the _Dispatch numbers
// (and whether FAIRKM_FORCE_SCALAR was set for the run).
void BackendMarkerLoop(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(&core::kernels::ActiveBackend());
  }
}
[[maybe_unused]] auto* const backend_marker = benchmark::RegisterBenchmark(
    (std::string("BM_ActiveKernelBackend_") + core::kernels::ActiveBackend().name)
        .c_str(),
    BackendMarkerLoop);

// Zero-work marker whose *name* records whether THIS binary was compiled
// with NDEBUG (i.e. an optimized Release configuration). The real
// google-benchmark's context.library_build_type describes the benchmark
// *library*, not our code, so tools/bench_json.sh gates on this marker
// instead: a debug record fails loudly.
[[maybe_unused]] auto* const build_config_marker = benchmark::RegisterBenchmark(
#ifdef NDEBUG
    "BM_BuildConfig_release",
#else
    "BM_BuildConfig_debug",
#endif
    BackendMarkerLoop);

void BM_FairKM_ParallelSweep(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  core::FairKMOptions options;
  options.k = 5;
  options.lambda = data.paper_lambda;
  options.minibatch_size = 256;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(42);
    auto result = RunSession(data.features, data.sensitive, options, &rng);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FairKM_ParallelSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);


// Out-of-core pair (n = 20000, d = 32, k = 8, 2 workers): _InProcess runs
// the snapshot sweep over the in-memory point store; _Sharded runs the SAME
// options through core::ShardedSweep over an mmap-backed store file, with
// each shard evicted from the page cache as the sweep passes it.
// Trajectories are bit-identical (tests/sharded_sweep_test.cc); what this
// pair measures is the out-of-core overhead (refaults + madvise), which
// tools/bench_json.sh bounds: Sharded/InProcess <= MAX_SHARDED_OVERHEAD.
// The one-time store materialization is excluded from both sides.
constexpr size_t kShardedN = 20000;
constexpr size_t kShardedD = 32;

core::FairKMOptions ShardedBenchOptions() {
  core::FairKMOptions options;
  options.k = 8;
  options.lambda = core::SuggestLambda(kShardedN, options.k);
  options.max_iterations = 3;
  options.minibatch_size = 1024;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.num_threads = 2;
  return options;
}

void BM_FairKM_SnapshotSweep_InProcess(benchmark::State& state) {
  const auto& world = SyntheticWorld(kShardedN, kShardedD);
  const core::FairKMOptions options = ShardedBenchOptions();
  for (auto _ : state) {
    auto solver =
        core::FairKMSolver::Create(&world.features, &world.sensitive, options)
            .ValueOrDie();
    solver.Init(uint64_t{42}).Abort();
    solver.Run().ValueOrDie();
    benchmark::DoNotOptimize(solver.assignment().data());
  }
}
BENCHMARK(BM_FairKM_SnapshotSweep_InProcess)->Unit(benchmark::kMillisecond);

void BM_FairKM_SnapshotSweep_Sharded(benchmark::State& state) {
  const auto& world = SyntheticWorld(kShardedN, kShardedD);
  const core::FairKMOptions options = ShardedBenchOptions();
  static const std::shared_ptr<const data::PointStore> store = [] {
    data::PointStoreSpec spec;
    spec.backend = data::PointStoreSpec::Backend::kMmap;
    spec.path = "/tmp/fairkm_bench_sharded.fkps";
    return data::PointStore::Create(SyntheticWorld(kShardedN, kShardedD).features,
                                    spec)
        .ValueOrDie();
  }();
  double evictions = 0.0;
  for (auto _ : state) {
    auto sweep =
        core::ShardedSweep::Create(store, &world.sensitive, options, 8)
            .ValueOrDie();
    sweep.Init(uint64_t{42}).Abort();
    sweep.Run().ValueOrDie();
    evictions = static_cast<double>(sweep.stats().evictions);
    benchmark::DoNotOptimize(sweep.solver().assignment().data());
  }
  state.counters["evictions"] = evictions;
}
BENCHMARK(BM_FairKM_SnapshotSweep_Sharded)->Unit(benchmark::kMillisecond);

// Online engine pair (src/online/): _Admit measures the steady-state cost of
// the live Eq. 1 insertion path — per admitted point the engine scores all k
// clusters (distance + fairness insertion delta), appends to the growable
// store, adopts the row into the state, and re-derives the n-dependent
// dataset distribution. Each round's ids are retired outside the timed
// region so the engine holds a steady row count and iterations stay
// comparable. tools/bench_json.sh gates on the points_per_sec counter
// (MIN_ADMIT_POINTS_PER_SEC). _DriftResweep measures the full bounded
// drift-response cycle the supervisor triggers on a regression: canonical
// Flush rebuild + one budgeted Algorithm-1 sweep + snapshot republish.
constexpr size_t kOnlineN = 4096;
constexpr size_t kOnlineD = 64;
constexpr size_t kOnlineBatch = 64;

online::OnlineOptions OnlineBenchOptions() {
  online::OnlineOptions options;
  options.solver.k = 8;
  options.solver.lambda = core::SuggestLambda(kOnlineN, options.solver.k);
  options.solver.max_iterations = 3;
  // Keep the drift monitor quiet: each bench exercises exactly one path
  // (the admit fast path, or the explicitly forced re-sweep).
  options.drift.regression_tolerance = 1e12;
  options.drift.resweep_max_sweeps = 1;
  return options;
}

// Admit-side sensitive view mirroring the training structure (same attrs and
// cardinalities, fresh random codes for the admitted rows).
data::SensitiveView OnlineAdmitView(const data::SensitiveView& training,
                                    size_t rows, Rng* rng) {
  data::SensitiveView view;
  for (const auto& attr : training.categorical) {
    data::CategoricalSensitive a;
    a.name = attr.name;
    a.cardinality = attr.cardinality;
    a.weight = attr.weight;
    a.codes.resize(rows);
    for (auto& code : a.codes) {
      code = static_cast<int32_t>(
          rng->UniformInt(static_cast<uint64_t>(attr.cardinality)));
    }
    a.dataset_fractions.assign(static_cast<size_t>(attr.cardinality), 0.0);
    view.categorical.push_back(std::move(a));
  }
  return view;
}

data::Matrix OnlineAdmitBatch(size_t rows, Rng* rng) {
  data::Matrix batch(rows, kOnlineD);
  for (size_t i = 0; i < rows; ++i) {
    double* row = batch.Row(i);
    for (size_t j = 0; j < kOnlineD; ++j) {
      row[j] = rng->Bernoulli(0.2) ? rng->UniformDouble(0.0, 2.0) : 0.0;
    }
  }
  return batch;
}

online::OnlineFairKM& OnlineBenchEngine() {
  static online::OnlineFairKM* engine = [] {
    const auto& world = SyntheticWorld(kOnlineN, kOnlineD);
    return online::OnlineFairKM::Create(world.features, world.sensitive,
                                        OnlineBenchOptions(), /*seed=*/1)
        .ValueOrDie()
        .release();
  }();
  return *engine;
}

void BM_Online_Admit(benchmark::State& state) {
  online::OnlineFairKM& engine = OnlineBenchEngine();
  const auto& world = SyntheticWorld(kOnlineN, kOnlineD);
  Rng rng(0x0A1D);
  const data::Matrix batch = OnlineAdmitBatch(kOnlineBatch, &rng);
  const data::SensitiveView view =
      OnlineAdmitView(world.sensitive, kOnlineBatch, &rng);
  size_t points = 0;
  double admit_seconds = 0.0;
  for (auto _ : state) {
    Timer timer;
    auto ids = engine.Admit(batch, &view);
    admit_seconds += timer.ElapsedSeconds();
    const std::vector<uint64_t>& admitted = ids.ValueOrDie();
    points += admitted.size();
    state.PauseTiming();
    engine.Retire(admitted).Abort();
    state.ResumeTiming();
  }
  state.counters["points_per_sec"] =
      admit_seconds > 0.0 ? static_cast<double>(points) / admit_seconds : 0.0;
}
BENCHMARK(BM_Online_Admit)->Unit(benchmark::kMillisecond);

void BM_Online_DriftResweep(benchmark::State& state) {
  online::OnlineFairKM& engine = OnlineBenchEngine();
  const auto& world = SyntheticWorld(kOnlineN, kOnlineD);
  Rng rng(0x0A2D);
  for (auto _ : state) {
    state.PauseTiming();
    // Dirty the incremental state so the re-sweep's canonical rebuild and
    // budgeted sweep have fresh membership to chew on.
    const data::Matrix batch = OnlineAdmitBatch(8, &rng);
    const data::SensitiveView view = OnlineAdmitView(world.sensitive, 8, &rng);
    auto ids = engine.Admit(batch, &view);
    const std::vector<uint64_t> admitted = ids.ValueOrDie();
    state.ResumeTiming();

    engine.TriggerResweep().Abort();

    state.PauseTiming();
    engine.Retire(admitted).Abort();
    state.ResumeTiming();
  }
  state.counters["resweeps"] =
      static_cast<double>(engine.Stats().resweeps);
}
BENCHMARK(BM_Online_DriftResweep)->Unit(benchmark::kMillisecond);

void BM_MoveDeltaEvaluation(benchmark::State& state) {
  const auto& data = AdultSlice(2000);
  const int k = 5;
  Rng rng(3);
  cluster::Assignment initial(data.features.rows());
  for (auto& a : initial) a = static_cast<int32_t>(rng.UniformInt(uint64_t{5}));
  auto fairness_state =
      core::FairKMState::Create(&data.features, &data.sensitive, k, initial)
          .ValueOrDie();
  size_t i = 0;
  for (auto _ : state) {
    const int to = static_cast<int>(i % k);
    double delta = fairness_state.DeltaKMeans(i % data.features.rows(), to) +
                   fairness_state.DeltaFairness(i % data.features.rows(), to);
    benchmark::DoNotOptimize(delta);
    ++i;
  }
}
BENCHMARK(BM_MoveDeltaEvaluation);

}  // namespace

BENCHMARK_MAIN();
