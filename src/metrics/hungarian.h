// Hungarian algorithm (Kuhn-Munkres) for min-cost perfect assignment.
//
// Used by the DevC centroid-deviation metric to optimally pair fair-clustering
// centroids with S-blind centroids.

#ifndef FAIRKM_METRICS_HUNGARIAN_H_
#define FAIRKM_METRICS_HUNGARIAN_H_

#include <vector>

#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace metrics {

/// \brief Solves min-cost assignment over an r x c cost matrix with r <= c.
///
/// Returns the matched column per row in `*matching` and the total cost.
/// O(r^2 c) potentials implementation; exact.
Result<double> HungarianAssign(const data::Matrix& cost, std::vector<int>* matching);

}  // namespace metrics
}  // namespace fairkm

#endif  // FAIRKM_METRICS_HUNGARIAN_H_
