// PointStore storage backends: the in-memory and memory-mapped backends must
// expose identical padded/aligned rows, the FKPS store file must round-trip
// bit-identically through both the one-shot Create and the streaming
// FileWriter, and every corruption mode — truncation, bit flips, injected
// short writes and torn renames — must read back as kDataLoss, never as a
// plausible point set.

#include "data/point_store.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace data {
namespace {

class PointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = (std::filesystem::temp_directory_path() /
            ("fairkm_point_store_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(io::CreateDirectories(dir_).ok());
  }

  void TearDown() override {
    fault::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

// Deterministic fill so every backend materializes the exact same doubles.
Matrix TestMatrix(size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<double>(r) * 31.0 -
                   static_cast<double>(c) * 2.5 + 0.125;
    }
  }
  return m;
}

void ExpectStoreMatchesMatrix(const PointStore& store, const Matrix& m) {
  ASSERT_EQ(store.rows(), m.rows());
  ASSERT_EQ(store.cols(), m.cols());
  ASSERT_EQ(store.stride(), PaddedStride(m.cols()));
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = store.Row(r);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(row) % kKernelAlignment, 0u)
        << "row " << r;
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(row[c], m.At(r, c)) << "row " << r << " col " << c;
    }
    for (size_t c = m.cols(); c < store.stride(); ++c) {
      EXPECT_EQ(row[c], 0.0) << "padding lane, row " << r << " col " << c;
    }
  }
}

TEST(PointStoreSpecTest, ParsesAndRoundTrips) {
  const PointStoreSpec mem = PointStoreSpec::Parse("mem").ValueOrDie();
  EXPECT_EQ(mem.backend, PointStoreSpec::Backend::kMemory);
  EXPECT_EQ(mem.ToString(), "mem");

  const PointStoreSpec mmap =
      PointStoreSpec::Parse("mmap:/tmp/points.fkps").ValueOrDie();
  EXPECT_EQ(mmap.backend, PointStoreSpec::Backend::kMmap);
  EXPECT_EQ(mmap.path, "/tmp/points.fkps");
  EXPECT_EQ(mmap.ToString(), "mmap:/tmp/points.fkps");

  for (const char* bad : {"", "MEM", "mmap:", "disk:/x", "mmap"}) {
    const auto result = PointStoreSpec::Parse(bad);
    ASSERT_FALSE(result.ok()) << "spec \"" << bad << "\"";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "spec \"" << bad << "\"";
  }
}

TEST_F(PointStoreTest, MemoryBackendPadsAndAligns) {
  const Matrix m = TestMatrix(7, 5);
  const PointStore store(m);
  ExpectStoreMatchesMatrix(store, m);
  EXPECT_EQ(store.backend(), PointStoreSpec::Backend::kMemory);
  EXPECT_TRUE(store.file_path().empty());
  EXPECT_EQ(store.data_bytes(), 7 * PaddedStride(5) * sizeof(double));
  EXPECT_FALSE(store.empty());
}

TEST_F(PointStoreTest, MmapBackendMatchesMemoryBackend) {
  const Matrix m = TestMatrix(37, 5);
  const auto mem =
      PointStore::Create(m, PointStoreSpec::Parse("mem").ValueOrDie())
          .ValueOrDie();
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");
  const auto mapped = PointStore::Create(m, spec).ValueOrDie();

  ExpectStoreMatchesMatrix(*mem, m);
  ExpectStoreMatchesMatrix(*mapped, m);
  EXPECT_EQ(mapped->backend(), PointStoreSpec::Backend::kMmap);
  EXPECT_EQ(mapped->file_path(), spec.path);
  EXPECT_EQ(mapped->data_bytes(), mem->data_bytes());
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(std::memcmp(mem->Row(r), mapped->Row(r),
                          mem->stride() * sizeof(double)),
              0)
        << "row " << r;
  }
}

TEST_F(PointStoreTest, FileWriterStreamsTheSameImageAsCreate) {
  const Matrix m = TestMatrix(23, 6);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("create.fkps");
  ASSERT_TRUE(PointStore::Create(m, spec).ok());

  const std::string streamed_path = Path("streamed.fkps");
  PointStore::FileWriter writer =
      PointStore::FileWriter::Start(streamed_path, m.rows(), m.cols())
          .ValueOrDie();
  EXPECT_EQ(writer.rows(), m.rows());
  EXPECT_EQ(writer.cols(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    ASSERT_TRUE(writer.Append(m.Row(r)).ok()) << "row " << r;
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Same rows, same declared shape -> byte-identical store files.
  std::string created, streamed;
  ASSERT_TRUE(io::ReadFile(spec.path, &created, "test").ok());
  ASSERT_TRUE(io::ReadFile(streamed_path, &streamed, "test").ok());
  EXPECT_EQ(created, streamed);

  const auto store = PointStore::Open(streamed_path).ValueOrDie();
  ExpectStoreMatchesMatrix(*store, m);
}

TEST_F(PointStoreTest, FileWriterEnforcesTheDeclaredShape) {
  EXPECT_EQ(PointStore::FileWriter::Start(Path("zero.fkps"), 0, 3)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PointStore::FileWriter::Start(Path("zero.fkps"), 3, 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const Matrix m = TestMatrix(3, 4);
  {
    // Finishing before every declared row arrived must fail, not seal a
    // short store.
    PointStore::FileWriter writer =
        PointStore::FileWriter::Start(Path("short.fkps"), 3, 4).ValueOrDie();
    ASSERT_TRUE(writer.Append(m.Row(0)).ok());
    const Status st = writer.Finish();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_FALSE(std::filesystem::exists(Path("short.fkps")));

  {
    // One Append past the declared row count is rejected.
    PointStore::FileWriter writer =
        PointStore::FileWriter::Start(Path("extra.fkps"), 1, 4).ValueOrDie();
    ASSERT_TRUE(writer.Append(m.Row(0)).ok());
    EXPECT_EQ(writer.Append(m.Row(1)).code(), StatusCode::kInvalidArgument);
  }

  {
    // Non-finite values never reach the file.
    PointStore::FileWriter writer =
        PointStore::FileWriter::Start(Path("nan.fkps"), 2, 4).ValueOrDie();
    double row[4] = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0, 4.0};
    const Status st = writer.Append(row);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PointStoreTest, OpenMissingFileIsNotFound) {
  const auto result = PointStore::Open(Path("absent.fkps"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(PointStoreTest, EveryCorruptionReadsAsDataLoss) {
  const Matrix m = TestMatrix(6, 3);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");
  ASSERT_TRUE(PointStore::Create(m, spec).ok());
  std::string image;
  ASSERT_TRUE(io::ReadFile(spec.path, &image, "test").ok());

  // Truncations at a spread of prefixes.
  for (size_t keep = 0; keep < image.size(); keep += 1 + image.size() / 13) {
    const std::string torn = Path("torn.fkps");
    ASSERT_TRUE(io::AtomicWriteFile(torn, image.substr(0, keep), "test").ok());
    const auto result = PointStore::Open(torn);
    ASSERT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "kept " << keep << " bytes";
  }

  // Bit flips at a spread of offsets: header, meta, CRC slots, padding and
  // row payload are all covered by some checksum.
  for (size_t pos = 0; pos < image.size(); pos += 1 + image.size() / 61) {
    std::string flipped = image;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    const std::string bad = Path("flipped.fkps");
    ASSERT_TRUE(io::AtomicWriteFile(bad, flipped, "test").ok());
    const auto result = PointStore::Open(bad);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
        << "flip at byte " << pos;
  }

  // Trailing garbage (file size no longer matches the declared shape).
  ASSERT_TRUE(
      io::AtomicWriteFile(Path("long.fkps"), image + "tail", "test").ok());
  const auto result = PointStore::Open(Path("long.fkps"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST_F(PointStoreTest, NewerFormatVersionIsInvalidArgumentNotDataLoss) {
  const Matrix m = TestMatrix(4, 3);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");
  ASSERT_TRUE(PointStore::Create(m, spec).ok());
  std::string image;
  ASSERT_TRUE(io::ReadFile(spec.path, &image, "test").ok());

  // Bump the version field and re-seal the header CRC so the file is a
  // well-formed store of a FUTURE format, not a corrupt one of this format.
  const uint32_t future_version = 2;
  std::memcpy(&image[4], &future_version, sizeof(future_version));
  const uint32_t header_crc = MaskCrc32c(Crc32c(image.data(), 12));
  std::memcpy(&image[12], &header_crc, sizeof(header_crc));
  ASSERT_TRUE(io::AtomicWriteFile(Path("future.fkps"), image, "test").ok());

  const auto result = PointStore::Open(Path("future.fkps"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PointStoreTest, InjectedShortWriteSurfacesAtOpen) {
  const Matrix m = TestMatrix(16, 4);
  const std::string path = Path("points.fkps");

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kShortWrite;
  spec.keep_bytes = 200;
  spec.max_fires = 1;
  fault::Arm("pointstore.write", spec);

  // The short write is silent: the writer believes the store landed.
  PointStore::FileWriter writer =
      PointStore::FileWriter::Start(path, m.rows(), m.cols()).ValueOrDie();
  for (size_t r = 0; r < m.rows(); ++r) {
    ASSERT_TRUE(writer.Append(m.Row(r)).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  // Only the verify-on-open CRC walk can tell the bytes never made it.
  const auto result = PointStore::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST_F(PointStoreTest, InjectedTornRenameSurfacesAtOpenAndRewriteHeals) {
  const Matrix m = TestMatrix(16, 4);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");

  fault::FaultSpec torn;
  torn.kind = fault::Kind::kTornRename;
  torn.max_fires = 1;
  fault::Arm("pointstore.rename", torn);

  // Create = write + Open, so the torn image is caught immediately.
  const auto first = PointStore::Create(m, spec);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kDataLoss);

  // A clean rewrite replaces the torn file and reads back intact.
  const auto healed = PointStore::Create(m, spec);
  ASSERT_TRUE(healed.ok()) << healed.status().message();
  ExpectStoreMatchesMatrix(*healed.ValueOrDie(), m);
}

TEST_F(PointStoreTest, InjectedOpenFsyncAndReadErrorsPropagate) {
  const Matrix m = TestMatrix(8, 3);
  const std::string path = Path("points.fkps");

  fault::FaultSpec io_error;
  io_error.kind = fault::Kind::kError;
  io_error.code = StatusCode::kIOError;
  io_error.max_fires = 1;

  fault::Arm("pointstore.open", io_error);
  EXPECT_EQ(PointStore::FileWriter::Start(path, m.rows(), m.cols())
                .status()
                .code(),
            StatusCode::kIOError);
  fault::DisarmAll();

  // A failed fsync aborts the publish: the final path never appears.
  fault::Arm("pointstore.fsync", io_error);
  {
    PointStore::FileWriter writer =
        PointStore::FileWriter::Start(path, m.rows(), m.cols()).ValueOrDie();
    for (size_t r = 0; r < m.rows(); ++r) {
      ASSERT_TRUE(writer.Append(m.Row(r)).ok());
    }
    EXPECT_EQ(writer.Finish().code(), StatusCode::kIOError);
  }
  fault::DisarmAll();
  EXPECT_EQ(PointStore::Open(path).status().code(), StatusCode::kNotFound);

  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = path;
  ASSERT_TRUE(PointStore::Create(m, spec).ok());
  fault::Arm("pointstore.read", io_error);
  EXPECT_EQ(PointStore::Open(path).status().code(), StatusCode::kIOError);
  fault::DisarmAll();
  EXPECT_TRUE(PointStore::Open(path).ok());
}

TEST_F(PointStoreTest, EvictedRowsRefaultToIdenticalBytes) {
  // Enough rows to span several pages, so eviction actually drops pages.
  const Matrix m = TestMatrix(200, 6);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");
  const auto store = PointStore::Create(m, spec).ValueOrDie();

  std::vector<double> before(store->rows() * store->stride());
  for (size_t r = 0; r < store->rows(); ++r) {
    std::memcpy(before.data() + r * store->stride(), store->Row(r),
                store->stride() * sizeof(double));
  }

  store->EvictRows(0, store->rows());
  store->EvictRows(10, 10);  // Empty range is a no-op.
  for (size_t r = 0; r < store->rows(); ++r) {
    EXPECT_EQ(std::memcmp(before.data() + r * store->stride(), store->Row(r),
                          store->stride() * sizeof(double)),
              0)
        << "row " << r << " changed across eviction";
  }

  // The memory backend accepts (and ignores) eviction too.
  const PointStore mem(m);
  mem.EvictRows(0, mem.rows());
  ExpectStoreMatchesMatrix(mem, m);
}

TEST_F(PointStoreTest, TruncationAfterOpenReadsAsDataLossNotSigbus) {
  // Shrinking the backing file underneath a live mapping (concurrent
  // writer, filesystem fault) must surface as kDataLoss from the guarded
  // probe — never as a SIGBUS on the first touch past the new EOF.
  const Matrix m = TestMatrix(64, 6);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("points.fkps");
  const auto store = PointStore::Create(m, spec).ValueOrDie();
  ASSERT_TRUE(store->CheckBacking().ok());

  const auto size = std::filesystem::file_size(spec.path);
  ASSERT_EQ(::truncate(spec.path.c_str(), static_cast<off_t>(size / 2)), 0);

  const Status probe = store->CheckBacking();
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.code(), StatusCode::kDataLoss);
  // The chunked walk re-probes before touching each chunk, so it refuses
  // cleanly instead of crashing the process.
  EXPECT_EQ(ValidateFiniteStore(*store, "points").code(),
            StatusCode::kDataLoss);

  // The injectable flavour of the same probe; the memory backend holds no
  // mapping and never consults the fault point.
  fault::Arm("pointstore.truncate", fault::FaultSpec{});
  const PointStore mem(m);
  EXPECT_TRUE(mem.CheckBacking().ok());
  fault::DisarmAll();
  EXPECT_EQ(store->CheckBacking().code(), StatusCode::kDataLoss);
}

TEST_F(PointStoreTest, ValidateFiniteStoreFlagsNonFiniteLanes) {
  Matrix m = TestMatrix(5, 4);
  const PointStore clean(m);
  EXPECT_TRUE(ValidateFiniteStore(clean, "points").ok());

  m.At(3, 2) = std::numeric_limits<double>::quiet_NaN();
  const PointStore dirty(m);
  const Status st = ValidateFiniteStore(dirty, "points");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("row 3"), std::string::npos);
}

TEST_F(PointStoreTest, AppendAndSwapRemoveGrowAndShrinkTheMemoryBackend) {
  const Matrix m = TestMatrix(4, 3);
  PointStore store(m);
  const std::vector<double> extra = {100.0, 101.0, 102.0};
  ASSERT_TRUE(store.AppendRow(extra.data(), 3).ok());
  ASSERT_EQ(store.rows(), 5u);
  EXPECT_EQ(store.Row(4)[0], 100.0);
  EXPECT_EQ(store.Row(4)[1], 101.0);
  EXPECT_EQ(store.Row(4)[2], 102.0);
  for (size_t j = 3; j < store.stride(); ++j) {
    EXPECT_EQ(store.Row(4)[j], 0.0) << "padding lane " << j;
  }
  // Earlier rows survive the (possibly reallocating) growth untouched.
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(store.Row(r)[c], m.At(r, c));
  }

  EXPECT_EQ(store.AppendRow(extra.data(), 2).code(),
            StatusCode::kInvalidArgument);
  const std::vector<double> dirty = {
      1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  EXPECT_EQ(store.AppendRow(dirty.data(), 3).code(),
            StatusCode::kInvalidArgument);
  ASSERT_EQ(store.rows(), 5u);  // Rejections left the store unchanged.

  // Swap-with-last removal: the appended row slides into the hole.
  ASSERT_TRUE(store.SwapRemoveRow(1).ok());
  ASSERT_EQ(store.rows(), 4u);
  EXPECT_EQ(store.Row(1)[0], 100.0);
  EXPECT_EQ(store.Row(1)[1], 101.0);
  EXPECT_EQ(store.SwapRemoveRow(17).code(), StatusCode::kInvalidArgument);
}

// The online-admit contract of the read-only backend: growing an mmap store
// fails with an actionable kInvalidArgument (naming the `mem` remedy), and
// the mapping is left byte-identical.
TEST_F(PointStoreTest, MmapBackendRefusesOnlineGrowthActionably) {
  const Matrix m = TestMatrix(6, 3);
  PointStoreSpec spec;
  spec.backend = PointStoreSpec::Backend::kMmap;
  spec.path = Path("grow.fkps");
  const auto mapped = PointStore::Create(m, spec).ValueOrDie();
  // AppendRow/SwapRemoveRow are non-const; the shared handle is const by
  // design (readers). The cast is safe here: the mmap paths reject before
  // touching anything.
  auto* store = const_cast<PointStore*>(mapped.get());

  const std::vector<double> extra = {1.0, 2.0, 3.0};
  const Status append = store->AppendRow(extra.data(), 3);
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(append.message().find("read-only mmap store"), std::string::npos);
  EXPECT_NE(append.message().find("--store=mem"), std::string::npos);

  const Status remove = store->SwapRemoveRow(0);
  ASSERT_FALSE(remove.ok());
  EXPECT_EQ(remove.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(remove.message().find("--store=mem"), std::string::npos);

  EXPECT_EQ(mapped->rows(), 6u);
  ExpectStoreMatchesMatrix(*mapped, m);
}

}  // namespace
}  // namespace data
}  // namespace fairkm
