// Online fairness engine (src/online/): the batch-rebuild oracle (any
// admit/retire sequence + Flush() is bit-identical to a from-scratch state
// over the surviving points), the drift monitor end to end (an injected
// non-finite objective reading triggers exactly one bounded re-sweep and a
// fresh snapshot generation), durable checkpoint/recover round-trips, and
// the whole-batch admit/retire validation contract.

#include "online/online_fairkm.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/fairkm_state.h"
#include "serve/assign_service.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace online {
namespace {

namespace fs = std::filesystem;

using testutil::MakeBlobs;
using testutil::MakeCategorical;
using testutil::MakeNumeric;
using testutil::MakeSeededWorld;
using testutil::MakeView;
using testutil::RandomCodes;
using testutil::SeededWorld;

// One engine configuration per SweepMode x pruning x mini-batch cell the
// oracle property must hold in (the kernel-backend axis is covered by the CI
// job that re-runs this suite under FAIRKM_FORCE_SCALAR=1).
struct EngineConfig {
  const char* name;
  core::SweepMode mode;
  int minibatch;
  bool pruning;
};

std::vector<EngineConfig> AllConfigs() {
  return {
      {"serial_pruned", core::SweepMode::kSerial, 0, true},
      {"serial_unpruned", core::SweepMode::kSerial, 0, false},
      {"serial_minibatch", core::SweepMode::kSerial, 16, true},
      {"parallel_snapshot", core::SweepMode::kParallelSnapshot, 16, true},
      {"parallel_snapshot_unpruned", core::SweepMode::kParallelSnapshot, 16,
       false},
  };
}

OnlineOptions MakeOptions(const SeededWorld& world, const EngineConfig& cfg) {
  OnlineOptions options;
  options.solver.k = world.k;
  // Fixed lambda: the auto heuristic depends on n, which an online engine
  // changes — a fixed weight keeps the oracle comparison exact and simple.
  options.solver.lambda = 60.0;
  options.solver.sweep_mode = cfg.mode;
  options.solver.minibatch_size = cfg.minibatch;
  options.solver.enable_pruning = cfg.pruning;
  // The oracle property is about admit/retire bookkeeping, not drift: an
  // enormous tolerance keeps the monitor quiet (the drift path has its own
  // deterministic tests below).
  options.drift.regression_tolerance = 1e12;
  return options;
}

// An admit batch mirroring the training view's attribute structure.
data::SensitiveView MakeAdmitView(const data::SensitiveView& training,
                                  size_t rows, Rng* rng) {
  data::SensitiveView view;
  for (const auto& attr : training.categorical) {
    data::CategoricalSensitive a;
    a.name = attr.name;
    a.cardinality = attr.cardinality;
    a.weight = attr.weight;
    a.codes = RandomCodes(rows, attr.cardinality, rng);
    a.dataset_fractions.assign(static_cast<size_t>(attr.cardinality), 0.0);
    view.categorical.push_back(std::move(a));
  }
  for (const auto& attr : training.numeric) {
    data::NumericSensitive a;
    a.name = attr.name;
    a.weight = attr.weight;
    a.values.resize(rows);
    for (double& v : a.values) v = rng->Normal(0.0, 1.0);
    view.numeric.push_back(std::move(a));
  }
  return view;
}

// The oracle: Flush(), then rebuild a FRESH FairKMState over copies of the
// surviving rows / raw sensitive codes / current assignment — exactly what a
// from-scratch load of the surviving dataset would construct — and demand
// bit-identical aggregates, moment tables and objective terms.
void ExpectOracleEquality(OnlineFairKM* engine) {
  ASSERT_TRUE(engine->Flush().ok());

  const data::Matrix points = engine->SurvivingPoints();
  const data::SensitiveView survived = engine->SurvivingSensitive();
  cluster::Assignment assignment = engine->CurrentAssignment();

  // Rebuild the dataset-level distribution from the raw codes/values the way
  // a cold load would; the engine's incrementally refreshed fractions/means
  // must already equal these doubles bit-for-bit.
  std::vector<data::CategoricalSensitive> cats;
  for (const auto& attr : survived.categorical) {
    data::CategoricalSensitive fresh =
        MakeCategorical(attr.codes, attr.cardinality, attr.name);
    fresh.weight = attr.weight;
    cats.push_back(std::move(fresh));
  }
  data::SensitiveView fresh_view = MakeView(std::move(cats));
  for (const auto& attr : survived.numeric) {
    data::NumericSensitive fresh = MakeNumeric(attr.values, attr.name);
    fresh.weight = attr.weight;
    fresh_view.numeric.push_back(std::move(fresh));
  }
  for (size_t a = 0; a < survived.categorical.size(); ++a) {
    for (size_t s = 0; s < survived.categorical[a].dataset_fractions.size();
         ++s) {
      EXPECT_EQ(survived.categorical[a].dataset_fractions[s],
                fresh_view.categorical[a].dataset_fractions[s])
          << "fraction drifted: attribute " << a << " value " << s;
    }
  }
  for (size_t a = 0; a < survived.numeric.size(); ++a) {
    EXPECT_EQ(survived.numeric[a].dataset_mean,
              fresh_view.numeric[a].dataset_mean)
        << "numeric mean drifted: attribute " << a;
  }

  auto fresh_result = core::FairKMState::Create(
      &points, &fresh_view, engine->solver().k(), std::move(assignment));
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.status().ToString();
  core::FairKMState fresh = std::move(fresh_result).ValueOrDie();
  const core::FairKMState& live = engine->solver().state();

  ASSERT_EQ(live.num_rows(), fresh.num_rows());
  core::FairKMState::Checkpoint a, b;
  live.SaveCheckpoint(&a);
  fresh.SaveCheckpoint(&b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_TRUE(a.sums == b.sums) << "cluster feature sums drifted";
  EXPECT_EQ(a.sum_norms, b.sum_norms);
  EXPECT_EQ(a.cat_counts, b.cat_counts);
  EXPECT_EQ(a.num_sums, b.num_sums);
  EXPECT_EQ(a.cat_u2, b.cat_u2);
  EXPECT_EQ(a.cat_uq, b.cat_uq);

  core::FairKMState::FairnessMomentTables ma, mb;
  live.ExportFairnessMoments(&ma);
  fresh.ExportFairnessMoments(&mb);
  EXPECT_EQ(ma.cat_counts, mb.cat_counts);
  EXPECT_EQ(ma.cat_u2, mb.cat_u2);
  EXPECT_EQ(ma.cat_uq, mb.cat_uq);
  EXPECT_EQ(ma.cat_q2, mb.cat_q2);
  EXPECT_EQ(ma.num_sums, mb.num_sums);

  // Objective terms, bit for bit — the flushed norm cache carries the same
  // chunked summation order a fresh Create runs.
  EXPECT_EQ(live.KMeansTermCached(), fresh.KMeansTermCached());
  EXPECT_EQ(live.FairnessTermCached(), fresh.FairnessTermCached());
}

class OnlineOracleTest : public ::testing::TestWithParam<EngineConfig> {};

// >= 100 randomized admit/retire ops, interleaved flushes, then the oracle.
TEST_P(OnlineOracleTest, RandomizedAdmitRetireFlushMatchesScratchRebuild) {
  const EngineConfig cfg = GetParam();
  const SeededWorld world = MakeSeededWorld(201);
  const OnlineOptions options = MakeOptions(world, cfg);
  auto created = OnlineFairKM::Create(world.points, world.sensitive, options,
                                      /*seed=*/7);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();

  Rng rng(303);
  const size_t dim = world.points.cols();
  for (int op = 0; op < 120; ++op) {
    const std::vector<uint64_t> live = engine->LiveIds();
    const bool admit = rng.UniformInt(10) < 6 || live.size() < 20;
    if (admit) {
      const size_t batch = 1 + rng.UniformInt(4);
      const data::Matrix pts =
          MakeBlobs(1, static_cast<int>(batch), static_cast<int>(dim), &rng);
      const data::SensitiveView sv =
          MakeAdmitView(world.sensitive, batch, &rng);
      auto ids = engine->Admit(pts, &sv);
      ASSERT_TRUE(ids.ok()) << ids.status().ToString();
      ASSERT_EQ(ids.ValueOrDie().size(), batch);
    } else {
      const size_t want = 1 + rng.UniformInt(3);
      std::unordered_set<uint64_t> picked;
      while (picked.size() < want && picked.size() + 1 < live.size()) {
        picked.insert(live[rng.UniformInt(live.size())]);
      }
      const std::vector<uint64_t> batch(picked.begin(), picked.end());
      const Status st = engine->Retire(batch);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    // Interleave canonical rebuilds so post-flush admits/retires are
    // exercised too (the engine must stay consistent across the reset).
    if (op % 37 == 36) {
      ASSERT_TRUE(engine->Flush().ok());
    }
  }
  const OnlineStats stats = engine->Stats();
  EXPECT_GE(stats.admitted + stats.retired, 100u);
  ExpectOracleEquality(engine.get());
}

// The oracle must also hold immediately after a bounded re-sweep (the
// re-sweep itself starts from a canonical rebuild and only applies moves).
TEST_P(OnlineOracleTest, OracleHoldsAfterForcedResweep) {
  const EngineConfig cfg = GetParam();
  const SeededWorld world = MakeSeededWorld(77);
  auto created = OnlineFairKM::Create(world.points, world.sensitive,
                                      MakeOptions(world, cfg), /*seed=*/3);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();

  Rng rng(55);
  const data::Matrix pts = MakeBlobs(1, 9, static_cast<int>(world.points.cols()),
                                     &rng);
  const data::SensitiveView sv = MakeAdmitView(world.sensitive, 9, &rng);
  ASSERT_TRUE(engine->Admit(pts, &sv).ok());
  const std::vector<uint64_t> live = engine->LiveIds();
  ASSERT_TRUE(engine->Retire({live[0], live[3], live[10]}).ok());

  const double before = engine->Stats().last_objective;
  ASSERT_TRUE(engine->TriggerResweep().ok());
  const OnlineStats stats = engine->Stats();
  EXPECT_EQ(stats.resweeps, 1u);
  EXPECT_GE(stats.flushes, 1u);
  EXPECT_EQ(stats.generation, 2u);  // Create published 1, re-sweep published 2.
  // A re-sweep only ever applies improving moves over the flushed state.
  EXPECT_LE(stats.last_objective, before + 1e-9);
  ExpectOracleEquality(engine.get());
}

INSTANTIATE_TEST_SUITE_P(AllModes, OnlineOracleTest,
                         ::testing::ValuesIn(AllConfigs()),
                         [](const ::testing::TestParamInfo<EngineConfig>& info) {
                           return std::string(info.param.name);
                         });

class OnlineDriftTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

// End-to-end drift response: an injected non-finite objective reading (the
// shared "supervisor.objective" fault point) trips the monitor exactly once
// — one bounded re-sweep, one new snapshot generation on the service — and
// operation continues normally once the fault disarms itself.
TEST_F(OnlineDriftTest, InjectedRegressionTriggersExactlyOneBoundedResweep) {
  const SeededWorld world = MakeSeededWorld(11);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  // Only a non-finite reading can trip the monitor under this tolerance, so
  // the single injected fault below is the only possible trigger.
  options.drift.regression_tolerance = 1e9;
  options.drift.resweep_max_sweeps = 2;

  serve::AssignService service;
  auto created = OnlineFairKM::Create(world.points, world.sensitive, options,
                                      /*seed=*/5, &service);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();
  ASSERT_EQ(engine->Stats().generation, 1u);
  ASSERT_NE(service.snapshot(), nullptr);
  ASSERT_EQ(service.snapshot()->version(), 1u);

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kError;
  spec.max_fires = 1;
  fault::Arm("supervisor.objective", spec);

  Rng rng(21);
  const data::Matrix pts = MakeBlobs(1, 3, static_cast<int>(world.points.cols()),
                                     &rng);
  const data::SensitiveView sv = MakeAdmitView(world.sensitive, 3, &rng);
  ASSERT_TRUE(engine->Admit(pts, &sv).ok());

  OnlineStats stats = engine->Stats();
  EXPECT_EQ(stats.resweeps, 1u);
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(service.snapshot()->version(), 2u);

  // The fault disarmed itself after one firing: further admits see a finite,
  // healthy objective and must NOT re-trigger.
  const data::SensitiveView sv2 = MakeAdmitView(world.sensitive, 3, &rng);
  ASSERT_TRUE(engine->Admit(pts, &sv2).ok());
  stats = engine->Stats();
  EXPECT_EQ(stats.resweeps, 1u);
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(service.snapshot()->version(), 2u);
}

// The baseline refresh after a re-sweep: the new baseline is the re-swept
// per-point objective, so the monitor re-arms against the recovered level.
TEST_F(OnlineDriftTest, ResweepRefreshesTheDriftBaseline) {
  const SeededWorld world = MakeSeededWorld(13);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.drift.regression_tolerance = 1e9;
  auto created =
      OnlineFairKM::Create(world.points, world.sensitive, options, /*seed=*/9);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();

  ASSERT_TRUE(engine->TriggerResweep().ok());
  const OnlineStats stats = engine->Stats();
  EXPECT_EQ(stats.baseline_per_point,
            stats.last_objective / static_cast<double>(stats.live_rows));
}

class OnlineRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fairkm_online_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(OnlineRecoveryTest, CheckpointRecoverRoundTripsTheEngine) {
  const SeededWorld world = MakeSeededWorld(31);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.drift.regression_tolerance = 1e12;
  options.checkpoint_dir = dir_.string();

  auto created =
      OnlineFairKM::Create(world.points, world.sensitive, options, /*seed=*/1);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();

  Rng rng(41);
  const data::Matrix pts = MakeBlobs(1, 6, static_cast<int>(world.points.cols()),
                                     &rng);
  const data::SensitiveView sv = MakeAdmitView(world.sensitive, 6, &rng);
  ASSERT_TRUE(engine->Admit(pts, &sv).ok());
  const std::vector<uint64_t> live = engine->LiveIds();
  ASSERT_TRUE(engine->Retire({live[2], live[7]}).ok());
  // Flush before checkpointing: the solver checkpoint restores the
  // aggregates bit-exactly, but the per-point norm cache is rebuilt
  // canonically at recovery — flushing makes the live cache canonical too,
  // so the recovered objective is bit-identical, not merely close.
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());

  const OnlineStats before = engine->Stats();
  const std::vector<uint64_t> ids_before = engine->LiveIds();
  const cluster::Assignment assign_before = engine->CurrentAssignment();
  engine.reset();

  auto recovered = OnlineFairKM::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::unique_ptr<OnlineFairKM> twin = std::move(recovered).ValueOrDie();
  const OnlineStats after = twin->Stats();
  EXPECT_EQ(after.admitted, before.admitted);
  EXPECT_EQ(after.retired, before.retired);
  EXPECT_EQ(after.live_rows, before.live_rows);
  EXPECT_EQ(after.generation, before.generation + 1);  // Fresh publish.
  EXPECT_EQ(after.last_objective, before.last_objective);  // Bit-exact solver.
  EXPECT_EQ(twin->LiveIds(), ids_before);
  EXPECT_EQ(twin->CurrentAssignment(), assign_before);

  // The recovered engine keeps operating: new ids continue past the old
  // counter (no reuse), and the oracle still holds.
  auto ids = twin->Admit(pts, &sv);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  for (const uint64_t id : ids.ValueOrDie()) {
    for (const uint64_t old : ids_before) EXPECT_NE(id, old);
  }
  ExpectOracleEquality(twin.get());
}

TEST_F(OnlineRecoveryTest, LostSolverFileFallsBackToWarmStartRebuild) {
  const SeededWorld world = MakeSeededWorld(37);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.checkpoint_dir = dir_.string();
  auto created =
      OnlineFairKM::Create(world.points, world.sensitive, options, /*seed=*/2);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();
  ASSERT_TRUE(engine->Checkpoint().ok());
  const cluster::Assignment assign_before = engine->CurrentAssignment();
  engine.reset();

  // Lose the solver checkpoint between the pair: recovery degrades to a
  // canonical warm-start rebuild from the engine file's saved assignment.
  ASSERT_TRUE(fs::remove(dir_ / "online-solver.fkmc"));
  auto recovered = OnlineFairKM::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::unique_ptr<OnlineFairKM> twin = std::move(recovered).ValueOrDie();
  EXPECT_EQ(twin->CurrentAssignment(), assign_before);
  ExpectOracleEquality(twin.get());
}

TEST_F(OnlineRecoveryTest, MissingEngineFileIsAnError) {
  OnlineOptions options;
  options.solver.k = 3;
  options.checkpoint_dir = (dir_ / "never_written").string();
  auto recovered = OnlineFairKM::Recover(options);
  EXPECT_FALSE(recovered.ok());
}

TEST(OnlineValidation, AdmitRejectsBadBatchesWithoutStateChange) {
  const SeededWorld world = MakeSeededWorld(53);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.drift.regression_tolerance = 1e12;
  auto created =
      OnlineFairKM::Create(world.points, world.sensitive, options, /*seed=*/4);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();
  const OnlineStats before = engine->Stats();
  Rng rng(61);

  // Wrong feature width.
  {
    const data::Matrix narrow = MakeBlobs(1, 2, 2, &rng);
    const data::SensitiveView sv = MakeAdmitView(world.sensitive, 2, &rng);
    auto r = engine->Admit(narrow, &sv);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Sensitive view required but missing.
  {
    const data::Matrix pts =
        MakeBlobs(1, 2, static_cast<int>(world.points.cols()), &rng);
    auto r = engine->Admit(pts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Code outside the trained cardinality.
  {
    const data::Matrix pts =
        MakeBlobs(1, 2, static_cast<int>(world.points.cols()), &rng);
    data::SensitiveView sv = MakeAdmitView(world.sensitive, 2, &rng);
    sv.categorical[0].codes[1] = sv.categorical[0].cardinality + 5;
    auto r = engine->Admit(pts, &sv);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  const OnlineStats after = engine->Stats();
  EXPECT_EQ(after.admitted, before.admitted);
  EXPECT_EQ(after.live_rows, before.live_rows);
}

TEST(OnlineValidation, RetireRejectsBadBatchesWholesale) {
  const SeededWorld world = MakeSeededWorld(59);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.drift.regression_tolerance = 1e12;
  auto created =
      OnlineFairKM::Create(world.points, world.sensitive, options, /*seed=*/6);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();
  const std::vector<uint64_t> live = engine->LiveIds();

  // Unknown id: the whole batch (including the valid id) is rejected.
  {
    const Status st = engine->Retire({live[0], 999999});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kNotFound);
  }
  // Duplicate id.
  {
    const Status st = engine->Retire({live[1], live[1]});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // Retiring every live point.
  {
    const Status st = engine->Retire(live);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(engine->Stats().retired, 0u);
  EXPECT_EQ(engine->LiveIds(), live);

  // A retired id is then NotFound (no id reuse).
  ASSERT_TRUE(engine->Retire({live[4]}).ok());
  const Status st = engine->Retire({live[4]});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace online
}  // namespace fairkm
