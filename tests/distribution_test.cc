#include "metrics/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "test_util.h"

namespace fairkm {
namespace metrics {
namespace {

TEST(EuclideanDistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 0}, {0, 1}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

TEST(Wasserstein1Test, IdenticalDistributionsZero) {
  EXPECT_DOUBLE_EQ(Wasserstein1({0.2, 0.3, 0.5}, {0.2, 0.3, 0.5}), 0.0);
}

TEST(Wasserstein1Test, BinarySupportEqualsPmfDifference) {
  // Over {0,1}: W1 = |p0 - q0|.
  EXPECT_NEAR(Wasserstein1({0.7, 0.3}, {0.4, 0.6}), 0.3, 1e-12);
}

TEST(Wasserstein1Test, MassMovedAcrossFullSupport) {
  // All mass at 0 vs all mass at 2: distance 2.
  EXPECT_NEAR(Wasserstein1({1, 0, 0}, {0, 0, 1}), 2.0, 1e-12);
}

TEST(Wasserstein1Test, SymmetricAndTriangleInequality) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_dist = [&](size_t m) {
      std::vector<double> p(m);
      double total = 0;
      for (double& v : p) {
        v = rng.UniformDouble() + 1e-6;
        total += v;
      }
      for (double& v : p) v /= total;
      return p;
    };
    auto p = random_dist(5), q = random_dist(5), r = random_dist(5);
    EXPECT_NEAR(Wasserstein1(p, q), Wasserstein1(q, p), 1e-12);
    EXPECT_LE(Wasserstein1(p, r), Wasserstein1(p, q) + Wasserstein1(q, r) + 1e-12);
    EXPECT_GE(Wasserstein1(p, q), 0.0);
  }
}

TEST(Wasserstein1Test, EuclideanAwRatioForBinary) {
  // The paper's Table 6 gender row shows AE/AW = sqrt(2) for binary
  // attributes; verify the underlying identity ED = sqrt(2) * W1.
  std::vector<double> p = {0.62, 0.38}, q = {0.5, 0.5};
  EXPECT_NEAR(EuclideanDistance(p, q) / Wasserstein1(p, q), std::sqrt(2.0), 1e-12);
}

TEST(KlDivergenceTest, Basics) {
  EXPECT_NEAR(KlDivergence({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  EXPECT_GT(KlDivergence({0.9, 0.1}, {0.5, 0.5}), 0.0);
  // Zero p entries contribute nothing.
  EXPECT_NEAR(KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(TotalVariationTest, Basics) {
  EXPECT_DOUBLE_EQ(TotalVariation({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_NEAR(TotalVariation({0.7, 0.3}, {0.4, 0.6}), 0.3, 1e-12);
}

TEST(ClusterDistributionsTest, RowsAreClusterDistributions) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 2, 2, 2}, 3);
  data::Matrix d = ClusterDistributions(attr, {0, 0, 0, 1, 1, 1}, 2);
  EXPECT_NEAR(d.At(0, 0), 2.0 / 3, 1e-12);
  EXPECT_NEAR(d.At(0, 1), 1.0 / 3, 1e-12);
  EXPECT_NEAR(d.At(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(d.At(1, 2), 1.0, 1e-12);
}

TEST(ClusterDistributionsTest, EmptyClusterRowIsZero) {
  auto attr = testutil::MakeCategorical({0, 1}, 2);
  data::Matrix d = ClusterDistributions(attr, {0, 0}, 3);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(d.At(1, s), 0.0);
    EXPECT_EQ(d.At(2, s), 0.0);
  }
}

TEST(EmpiricalWasserstein1Test, IdenticalSamplesZero) {
  EXPECT_NEAR(EmpiricalWasserstein1({1, 2, 3}, {3, 2, 1}), 0.0, 1e-12);
}

TEST(EmpiricalWasserstein1Test, ShiftedSamples) {
  // Point masses: {0} vs {3} => distance 3.
  EXPECT_NEAR(EmpiricalWasserstein1({0}, {3}), 3.0, 1e-12);
  // Uniform {0,1} vs {2,3}: each quantile shifted by 2.
  EXPECT_NEAR(EmpiricalWasserstein1({0, 1}, {2, 3}), 2.0, 1e-12);
}

TEST(EmpiricalWasserstein1Test, DifferentSampleSizes) {
  // {0,0} vs {0,0,3}: F differs by 1/3 over [0,3] => 1.
  EXPECT_NEAR(EmpiricalWasserstein1({0, 0}, {0, 0, 3}), 1.0, 1e-12);
}

TEST(EmpiricalWasserstein1Test, EmptyInputsZero) {
  EXPECT_EQ(EmpiricalWasserstein1({}, {1, 2}), 0.0);
  EXPECT_EQ(EmpiricalWasserstein1({1}, {}), 0.0);
}

TEST(EmpiricalWasserstein1Test, AgreesWithCategoricalW1OnIntegerSupport) {
  // Samples drawn on the support {0..3} must give the same W1 as the
  // categorical formula applied to their histograms.
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    std::vector<double> pa(4, 0.0), pb(4, 0.0);
    for (int i = 0; i < 60; ++i) {
      const double va = static_cast<double>(rng.UniformInt(uint64_t{4}));
      const double vb = static_cast<double>(rng.UniformInt(uint64_t{4}));
      a.push_back(va);
      b.push_back(vb);
      pa[static_cast<size_t>(va)] += 1.0 / 60;
      pb[static_cast<size_t>(vb)] += 1.0 / 60;
    }
    EXPECT_NEAR(EmpiricalWasserstein1(a, b), Wasserstein1(pa, pb), 1e-9);
  }
}

TEST(EmpiricalWasserstein1Test, SubsetOfItselfSmall) {
  Rng rng(9);
  std::vector<double> all(200);
  for (double& v : all) v = rng.Normal(0, 1);
  std::vector<double> half(all.begin(), all.begin() + 100);
  // A large subsample of the same distribution should be close.
  EXPECT_LT(EmpiricalWasserstein1(half, all), 0.25);
}

}  // namespace
}  // namespace metrics
}  // namespace fairkm
