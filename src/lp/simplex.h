// Dense two-phase primal simplex solver.
//
// Solves min c'x s.t. Ax {<=,>=,=} b, 0 <= x <= u over a full dense tableau.
// Pivoting uses Dantzig's rule with an automatic switch to Bland's rule when
// progress stalls, which guarantees termination on degenerate problems.
//
// This is the library's substitute for an external LP library (GLPK /
// OR-tools are not available offline); it is sized for the transportation-
// structured LPs used by the fair-assignment and fairlet comparators
// (thousands of variables, not millions).

#ifndef FAIRKM_LP_SIMPLEX_H_
#define FAIRKM_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"
#include "lp/model.h"

namespace fairkm {
namespace lp {

/// \brief Solver knobs.
struct SimplexOptions {
  /// Hard cap across both phases; exceeding it returns NotConverged.
  int max_iterations = 200000;
  /// Pivot / reduced-cost tolerance.
  double tol = 1e-9;
  /// Phase-1 residual above which the problem is declared infeasible.
  double feasibility_tol = 1e-7;
};

/// \brief Optimal solution of an LP.
struct Solution {
  std::vector<double> values;  ///< One value per model variable.
  double objective = 0.0;      ///< c'x at the optimum.
  int iterations = 0;          ///< Total simplex pivots performed.
};

/// \brief Solves the model. Error codes: kInfeasible, kUnbounded,
/// kNotConverged (iteration cap), kInvalidArgument (empty model).
Result<Solution> Solve(const Model& model, const SimplexOptions& options = {});

}  // namespace lp
}  // namespace fairkm

#endif  // FAIRKM_LP_SIMPLEX_H_
