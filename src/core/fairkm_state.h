// Incremental FairKM optimizer state.
//
// Maintains, for a live clustering assignment:
//   * per-cluster sizes and feature sums (exact centroids at all times),
//   * per-cluster value counts for every categorical sensitive attribute,
//   * per-cluster value sums for every numeric sensitive attribute,
//   * per-point squared norms and per-cluster squared sum-norms (the
//     expanded-form K-Means delta caches),
//   * per (attribute, cluster) fairness moments sum_s u_s^2 and
//     sum_s u_s q_s, where u_s = |C_s| - |C| Fr_X(s) and q_s = Fr_X(s),
// and computes the exact change of both objective terms for a candidate move
// of one point in O(d) (K-Means term) + O(|S|) (fairness term, one scalar
// expression per attribute) instead of the original O(d) + O(sum_S m_S)
// two-loop evaluation. The batched DeltaKMeansAllClusters kernel evaluates
// every candidate cluster for one point in a single contiguous pass over the
// k x stride sums matrix, which is what the optimizer sweep uses.
//
// Hot-path storage is the aligned, lane-padded layout of
// data/point_store.h: the feature matrix is copied once into a PointStore
// (32-byte-aligned rows, stride a multiple of 4 doubles, zero padding) and
// the k x stride sums / prototype buffers use the same stride, so the dense
// primitives run the backends' aligned no-tail fast path (GemvAligned).
// Padded entries are exact zeros and never change any accumulated value.
//
// The dense primitives and the per-(attribute, cluster) moment recomputation
// route through core/kernels/kernels.h, which dispatches at runtime between
// a scalar reference backend and an AVX2/FMA backend (FAIRKM_FORCE_SCALAR
// pins the scalar one). CatMoments / CatMomentsBounds are bit-for-bit
// identical across backends, so the fairness aggregates never depend on the
// host CPU.
//
// Derivation of the O(1) fairness delta (expanding Eqs. 16-19): removing a
// point with value v from a cluster sends u_s -> u_s + q_s - [s=v], so
//   sum_s u'_s^2 = U2 + Q2 + 1 + 2 (UQ - u_v - q_v)
// with U2 = sum_s u_s^2, UQ = sum_s u_s q_s and the per-attribute constant
// Q2 = sum_s q_s^2; insertion sends u_s -> u_s - q_s + [s=v], so
//   sum_s u'_s^2 = U2 + Q2 + 1 - 2 (UQ - u_v + q_v).
// u_v needs only the single touched count |C_v|, making the delta O(1) per
// attribute. U2/UQ are recomputed from the exact integer counts in O(m_S)
// for the two touched clusters on Move (which is already O(m_S) there), so
// they never accumulate floating-point drift.
//
// Bound tracking (EnableBoundTracking) adds the cluster-level side of the
// sweep pruning engine (core/pruning.h):
//   * a monotone per-cluster centroid-drift accumulator (how far each
//     effective centroid — live, or the prototype snapshot in mini-batch
//     mode — has moved since the start), fed by exact per-move displacement
//     ||x - mu|| / (|C| -+ 1) in live mode and by a full old-vs-new centroid
//     comparison at every RefreshPrototypes in snapshot mode;
//   * monotone count-based fairness move bounds: per (attribute, cluster,
//     value) removal/insertion delta tables (the CatDeltaBounds kernel,
//     recomputed only for clusters whose group counts moved) whose row
//     minima give, per cluster, a lower bound on the fairness-term change of
//     removing *any* point from it / inserting *any* point into it — and
//     whose entries give the *exact* per-candidate fairness delta by table
//     lookup (FairRemovalDelta / FairInsertionDelta);
//   * the best/second-best insertion bound and smallest K-Means addition
//     factor |C|/(|C|+1) across clusters, so the pruning gate's first stage
//     is O(1) per point.
//
// The pre-expansion kernels are retained as ReferenceDeltaKMeans /
// ReferenceDeltaFairness: property tests cross-validate the optimized
// kernels against them and against scratch recomputation to 1e-9, and the
// scaling bench uses them as the "before" timing baseline.

#ifndef FAIRKM_CORE_FAIRKM_STATE_H_
#define FAIRKM_CORE_FAIRKM_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"
#include "core/objective.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief Mutable aggregates backing the round-robin optimization (§4.2).
///
/// The referenced points/sensitive views must outlive the state.
class FairKMState {
 public:
  /// \brief Builds aggregates for an initial assignment. `sensitive` may be
  /// empty (state degenerates to incremental K-Means bookkeeping).
  static Result<FairKMState> Create(const data::Matrix* points,
                                    const data::SensitiveView* sensitive, int k,
                                    cluster::Assignment initial,
                                    FairnessTermConfig config = {});

  /// \brief Store-backed variant: aggregates read directly from an existing
  /// PointStore (any backend — this is how out-of-core mmap stores enter the
  /// optimizer) and no data::Matrix is retained. Behavior is bit-identical
  /// to the matrix overload built over the same rows: the matrix path copies
  /// into an identical store before the first kernel pass anyway.
  static Result<FairKMState> Create(
      std::shared_ptr<const data::PointStore> store,
      const data::SensitiveView* sensitive, int k,
      cluster::Assignment initial, FairnessTermConfig config = {});

  /// \brief Rebuilds every per-assignment aggregate for a new initial
  /// assignment over the SAME points/sensitive view, reusing the aligned
  /// point store, the per-point norm cache and all buffer allocations (the
  /// multi-seed fast path of core::FairKMSolver — allocation-free after the
  /// first build). Snapshot/bound-tracking modes are preserved; bound state
  /// is recomputed from scratch (zero drift, fresh tables).
  Status Reset(cluster::Assignment initial);

  /// \brief Full copy of the per-assignment mutable state (everything except
  /// the immutable point store / norm caches), the payload of
  /// core::FairKMSolver checkpoints. Restoring it reproduces the exact
  /// floating-point aggregates — including the incremental summation order
  /// baked into the sums — so resumed trajectories are bit-identical.
  struct Checkpoint {
    cluster::Assignment assignment;
    std::vector<size_t> counts;
    data::AlignedVector sums;
    std::vector<double> sum_norms;
    std::vector<std::vector<int64_t>> cat_counts;
    std::vector<std::vector<double>> num_sums;
    std::vector<std::vector<double>> cat_u2, cat_uq;
    bool use_snapshot = false;
    std::vector<size_t> proto_counts;
    data::AlignedVector proto_sums;
    std::vector<double> proto_sum_norms;
    bool track_bounds = false;
    std::vector<double> drift;
    double max_step_sum = 0.0;
    std::vector<std::vector<double>> cat_rem_delta, cat_ins_delta;
    std::vector<double> fair_rem_bound, fair_ins_bound;
    double ins_best = 0.0, ins_second = 0.0;
    int ins_best_cluster = -1;
    double addf_best = 0.0, addf_second = 0.0;
    int addf_best_cluster = -1;
  };
  void SaveCheckpoint(Checkpoint* out) const;
  /// \brief Restores a checkpoint taken from a state over the same
  /// points/sensitive/k and the same snapshot/bound-tracking modes.
  Status RestoreCheckpoint(const Checkpoint& cp);

  // --- Online growth hooks (src/online/). All three require a store-backed
  // state (the matrix overload's private store cannot grow) whose backing
  // PointStore the caller mutates under its own serialization — never while
  // a sweep, a snapshot export, or any other reader is in flight.

  /// \brief Folds one just-appended point into the aggregates: the backing
  /// store AND the sensitive view must already hold num_rows()+1 rows, and
  /// the new row is assigned to cluster `to`. Updates assignment, counts,
  /// feature sums, norm caches and per-attribute count/sum tables
  /// incrementally in O(d + |S|). Dataset-statistic-dependent values (the
  /// view's fractions/means, cat_q2_, every U2/UQ moment, all bounds) go
  /// stale — the caller MUST call RefreshDatasetStats() after its admit
  /// batch, before any delta/objective query.
  Status AdmitAppended(int to);

  /// \brief Removes row r's contributions and mirrors the swap-with-last
  /// the caller is about to apply to the store and view: row r's aggregates
  /// are subtracted, then the LAST row's assignment/norm slide into slot r
  /// and the state shrinks by one row. Call BEFORE mutating the store (this
  /// reads row r). Same staleness contract as AdmitAppended.
  Status RetireSwapped(size_t r);

  /// \brief Recomputes everything that depends on the dataset-level
  /// statistics after the caller updated the sensitive view's
  /// dataset_fractions / dataset_mean for a changed membership: cat_q2_,
  /// every (attribute, cluster) U2/UQ moment, and — when bound tracking is
  /// on — every bound table (fresh, zero drift; per-point pruner bounds
  /// must be invalidated by the caller, see FairKMSolver::SyncStoreGrowth).
  /// O(k sum_S m_S).
  void RefreshDatasetStats();

  /// \brief Canonical full rebuild over the CURRENT store contents under
  /// `initial`: clears the per-point norm caches so every aggregate —
  /// including total ||x||^2 and the chunked summation order — is recomputed
  /// exactly as a fresh Create over the same rows would, which is the
  /// online engine's Flush() oracle contract (bit-identical moments, counts
  /// and objective versus a from-scratch state).
  Status RebuildFromStore(cluster::Assignment initial);

  /// \brief Exact change of the K-Means term if point `i` moved to `to`
  /// (0 when `to` is its current cluster).
  double DeltaKMeans(size_t i, int to) const;

  /// \brief Batched K-Means deltas: fills `out[c]` with DeltaKMeans(i, c) for
  /// every cluster in one contiguous pass over the k x stride sums matrix.
  /// `out` must have room for k() doubles. This is the optimizer's hot
  /// kernel; it is read-only and safe to call concurrently for distinct
  /// points while no Move/RefreshPrototypes runs.
  void DeltaKMeansAllClusters(size_t i, double* out) const {
    DeltaKMeansAllClusters(i, out, nullptr);
  }

  /// \brief Tracked variant: when `dists` is non-null (room for k doubles),
  /// additionally exports the clamped squared distance of point i to every
  /// effective centroid (0 for empty clusters) — the k values the pruning
  /// engine's per-point bound refresh consumes. The delta math is identical
  /// either way.
  void DeltaKMeansAllClusters(size_t i, double* out, double* dists) const;

  /// \brief Exact change of the fairness deviation term for the same move,
  /// in O(1) per sensitive attribute (see the header comment derivation).
  double DeltaFairness(size_t i, int to) const;

  /// \brief Fairness-term change of inserting an OUT-OF-SAMPLE point with
  /// the given sensitive values into cluster `to` (the serving-path half of
  /// DeltaFairness: no removal, the dataset size n and the dataset-level
  /// fractions stay those of the training data — the trained model is not
  /// mutated). `cat_codes` must hold one code per categorical attribute of
  /// the training view (in view order), `num_values` one value per numeric
  /// attribute; either may be null when the view has none.
  double DeltaFairnessInsertion(const int32_t* cat_codes,
                                const double* num_values, int to) const;

  /// \brief Pre-expansion O(d) two-distance K-Means delta (oracle/bench).
  double ReferenceDeltaKMeans(size_t i, int to) const;

  /// \brief Pre-expansion O(sum_S m_S) fairness delta (oracle/bench).
  double ReferenceDeltaFairness(size_t i, int to) const;

  /// \brief Applies the move, updating all aggregates in O(d + sum_S m_S).
  void Move(size_t i, int to);

  /// \brief K-Means term recomputed from scratch against exact centroids.
  double KMeansTerm() const;

  /// \brief K-Means term from the maintained norm caches in O(k):
  /// SSE = sum_i ||x_i||^2 - sum_c ||S_c||^2 / |C_c|, falling back to the
  /// scratch KMeansTerm() when the subtraction cancels too heavily
  /// (strongly off-center data). Agrees with KMeansTerm() to ~1e-10
  /// relative; the optimizer's per-sweep objective history uses this so
  /// recording the trajectory costs O(k), not O(n d), per sweep.
  double KMeansTermCached() const;

  /// \brief Fairness term recomputed from the count aggregates (O(k sum m)).
  double FairnessTerm() const;

  /// \brief Fairness term from the maintained U2 moments in O(k |S|)
  /// (FairnessTerm rebuilds the per-cluster counts from the assignment in
  /// O(n |S|)). Same value up to summation-order rounding.
  double FairnessTermCached() const;

  /// \brief Exact centroid matrix (k x d) of the current assignment.
  data::Matrix Centroids() const;

  const cluster::Assignment& assignment() const { return assignment_; }
  int cluster_of(size_t i) const { return assignment_[i]; }
  /// \brief Cached ||x_i||^2 — the pruning gate scales its rounding margin
  /// by this, since the expanded-form distances (and the drift steps built
  /// from them) carry absolute error proportional to the gross norms, not to
  /// the possibly tiny distances that survive the cancellation.
  double point_norm(size_t i) const { return point_norms_[i]; }
  size_t cluster_size(int c) const { return counts_[static_cast<size_t>(c)]; }
  int k() const { return k_; }
  size_t num_rows() const { return n_; }

  /// \brief Mini-batch support (paper §6.1): when enabled, DeltaKMeans reads
  /// a prototype snapshot instead of the live sums; RefreshPrototypes()
  /// re-synchronizes the snapshot. Fairness aggregates are always live (they
  /// are O(1) to maintain; the paper's bottleneck is the centroid update).
  void EnablePrototypeSnapshot(bool enable);
  void RefreshPrototypes();

  // --- Pruning-engine support (see the header comment and core/pruning.h).

  /// \brief Turns the cluster-level bound bookkeeping on/off. Enabling
  /// recomputes every bound from the current aggregates; when off, Move and
  /// RefreshPrototypes skip all bound work.
  void EnableBoundTracking(bool enable);
  bool bound_tracking() const { return track_bounds_; }

  /// \brief Cluster size as the K-Means delta path sees it (the prototype
  /// snapshot count in mini-batch mode, the live count otherwise).
  size_t effective_count(int c) const {
    return (use_snapshot_ ? proto_counts_ : counts_)[static_cast<size_t>(c)];
  }

  /// \brief Monotone cumulative drift (Euclidean centroid displacement) of
  /// cluster c's effective centroid.
  double cluster_drift(int c) const { return drift_[static_cast<size_t>(c)]; }
  /// \brief Monotone cumulative sum of per-event maximum centroid steps
  /// (each Move / prototype refresh contributes the largest single-cluster
  /// displacement it caused). For ANY cluster, the drift accumulated between
  /// two instants is bounded by the difference of this accumulator — the
  /// sound way to age a min-over-clusters lower bound in O(1). (The maximum
  /// of the cumulative per-cluster drifts would NOT be: a cluster below the
  /// max can move without raising it.)
  double cumulative_max_step() const { return max_step_sum_; }

  /// \brief Lower bound (un-scaled by lambda) on the fairness-term insertion
  /// cost of moving any point into any cluster other than `from`, from the
  /// cached per-cluster insertion bounds. Combined with
  /// fair_removal_bound(from) this lower-bounds the full fairness change of
  /// any move out of `from`; the two halves stay separate so the pruning
  /// gate's rounding margin can see their pre-cancellation magnitudes.
  double FairInsertionLowerBoundExcluding(int from) const;

  /// \brief Smallest K-Means addition factor |C|/(|C|+1) over candidate
  /// target clusters c != from (0 when some candidate cluster is empty),
  /// against the effective counts.
  double MinAdditionFactorExcluding(int from) const;

  /// \brief Per-cluster fairness move bounds (tests/testlib introspection).
  double fair_removal_bound(int c) const {
    return fair_rem_bound_[static_cast<size_t>(c)];
  }
  double fair_insertion_bound(int c) const {
    return fair_ins_bound_[static_cast<size_t>(c)];
  }

  /// \brief Exact fairness-term change of removing point i from its current
  /// cluster, in O(|S|) table lookups (bound tracking only). The sum
  /// FairRemovalDelta(i) + FairInsertionDelta(i, c) equals DeltaFairness(i,
  /// c) up to summation-order rounding — the pruning gate's stage 2 uses
  /// this split so the shared removal part prices once per point.
  double FairRemovalDelta(size_t i) const;

  /// \brief Exact fairness-term change of inserting point i into cluster c
  /// (its removal not included), in O(|S|) table lookups.
  double FairInsertionDelta(size_t i, int c) const;

  // --- Model export (the serving tier's frozen-snapshot path, src/serve/).

  /// \brief Copy-out of the fairness moment tables a frozen model snapshot
  /// needs to price DeltaFairnessInsertion without touching the live state:
  /// the exact integer value counts, the maintained U2/UQ moments, the
  /// assignment-independent Q2 constants and the numeric value sums. The
  /// copied doubles are the exact values the live insertion delta reads, so
  /// a snapshot evaluated with the same arithmetic reproduces it
  /// bit-for-bit.
  struct FairnessMomentTables {
    std::vector<std::vector<int64_t>> cat_counts;  ///< [a][c * m_a + s]
    std::vector<std::vector<double>> cat_u2;       ///< [a][c]
    std::vector<std::vector<double>> cat_uq;       ///< [a][c]
    std::vector<double> cat_q2;                    ///< [a]
    std::vector<std::vector<double>> num_sums;     ///< [a][c]
  };
  void ExportFairnessMoments(FairnessMomentTables* out) const;

  /// \brief Padded row width of the k x stride cluster-sum matrix.
  size_t stride() const { return stride_; }
  /// \brief Live k x stride feature sums (aligned, zero-padded rows).
  const data::AlignedVector& cluster_sums() const { return sums_; }
  /// \brief The fairness-term configuration the aggregates were built under.
  const FairnessTermConfig& config() const { return config_; }

 private:
  FairKMState(const data::Matrix* points, const data::SensitiveView* sensitive, int k,
              FairnessTermConfig config);
  FairKMState(std::shared_ptr<const data::PointStore> store,
              const data::SensitiveView* sensitive, int k,
              FairnessTermConfig config);

  void BuildAggregates(cluster::Assignment initial);

  // Recomputes cat_u2_/cat_uq_ for one (attribute, cluster) pair from the
  // exact integer counts. O(m_a).
  void RecomputeCatMoments(size_t a, int c);

  // Recomputes cluster c's per-value removal/insertion delta tables (the
  // CatDeltaBounds kernel) and folds their minima plus the numeric-attribute
  // pieces into fair_rem_bound_/fair_ins_bound_. O(sum_S m_S).
  void RecomputeFairBounds(int c);
  // Rescans the per-cluster insertion bounds for the best/second-best pair.
  void RescanInsertionBounds();
  // Rescans the effective counts for the smallest two addition factors.
  void RescanAdditionFactors();
  // Adds one drift event: per-cluster displacements (any may be 0) plus
  // their max into the max-step accumulator.
  void AccumulateDrift(int c, double displacement);
  void AccumulateMaxStep(double displacement);

  // Squared distance from point i to the mean of the given sums/count pair.
  double DistanceToMean(size_t i, const double* sums, double count) const;

  // Expanded-form squared distance ||x_i||^2 - 2 x.S_c/|C| + ||S_c||^2/|C|^2
  // against live or snapshot aggregates. `count` must be positive.
  double CachedDistanceToMean(size_t i, const double* sums, double sum_norm,
                              double count) const;

  // Null for store-backed states: every read goes through store_, the
  // matrix is only needed to (re)build the store on the matrix path.
  const data::Matrix* points_;
  const data::SensitiveView* sensitive_;
  int k_;
  size_t n_;
  size_t d_;
  size_t stride_;  // Padded row width of store_/sums_ (multiple of 4).
  FairnessTermConfig config_;

  // Aligned, lane-padded rows — the layout every hot kernel streams (see
  // data/point_store.h). On the matrix path this is a private copy of
  // *points_; on the store-backed path it is the caller's store (possibly
  // an mmap-backed one shared across sessions).
  std::shared_ptr<const data::PointStore> store_;

  cluster::Assignment assignment_;
  std::vector<size_t> counts_;        // Cluster sizes.
  data::AlignedVector sums_;          // k x stride feature sums (row-major).
  // cat_counts_[a][c * m_a + s] = |C_s| for attribute a.
  std::vector<std::vector<int64_t>> cat_counts_;
  // num_sums_[a][c] = sum of attribute a over cluster c.
  std::vector<std::vector<double>> num_sums_;

  // K-Means delta caches: ||x_i||^2 (immutable) and ||S_c||^2 (recomputed
  // for the two touched clusters on Move).
  std::vector<double> point_norms_;
  std::vector<double> sum_norms_;
  double total_point_norm_ = 0.0;  // sum_i ||x_i||^2 (immutable).

  // Fairness moments: cat_u2_[a][c] = sum_s u_s^2, cat_uq_[a][c] =
  // sum_s u_s q_s, cat_q2_[a] = sum_s q_s^2 (assignment-independent).
  std::vector<std::vector<double>> cat_u2_;
  std::vector<std::vector<double>> cat_uq_;
  std::vector<double> cat_q2_;

  bool use_snapshot_ = false;
  std::vector<size_t> proto_counts_;
  data::AlignedVector proto_sums_;
  std::vector<double> proto_sum_norms_;

  // --- Bound-tracking state (allocated/maintained only when
  // track_bounds_; see EnableBoundTracking).
  bool track_bounds_ = false;
  std::vector<double> drift_;            // Cumulative centroid drift.
  double max_step_sum_ = 0.0;            // Sum of per-event max steps.
  // Per-(attribute, cluster, value) fairness move-delta tables
  // (cat_*_delta_[a][c * m_a + v], weighted by w_a * norm_a), the
  // CatDeltaBounds kernel output.
  std::vector<std::vector<double>> cat_rem_delta_;
  std::vector<std::vector<double>> cat_ins_delta_;
  // Scratch rows for the kernel (un-weighted), sized max_a m_a.
  std::vector<double> delta_scratch_rem_;
  std::vector<double> delta_scratch_ins_;
  // Per-cluster fairness move bounds (summed over attributes, weighted).
  std::vector<double> fair_rem_bound_;
  std::vector<double> fair_ins_bound_;
  // Best/second-best insertion bound and the best's cluster.
  double ins_best_ = 0.0, ins_second_ = 0.0;
  int ins_best_cluster_ = -1;
  // Smallest/second-smallest addition factor and the smallest's cluster,
  // over the effective counts.
  double addf_best_ = 0.0, addf_second_ = 0.0;
  int addf_best_cluster_ = -1;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_FAIRKM_STATE_H_
