// Principal component analysis via power iteration with deflation.
//
// Dimensionality-reduction substrate for clustering pipelines, and the
// building block of the space-transformation family of fair-clustering
// methods the paper surveys in §2.1 (e.g. fair PCA [17]). Deterministic in
// the seed; suitable for the moderate dimensionalities used here (<= a few
// hundred columns).

#ifndef FAIRKM_DATA_PCA_H_
#define FAIRKM_DATA_PCA_H_

#include <cstdint>

#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace data {

/// \brief A fitted PCA basis.
struct PcaModel {
  Matrix components;             ///< num_components x d, orthonormal rows.
  std::vector<double> variances; ///< Eigenvalue (explained variance) per row.
  std::vector<double> means;     ///< Column means removed before fitting.
};

/// \brief PCA knobs.
struct PcaOptions {
  int num_components = 2;
  int power_iterations = 100;    ///< Per component.
  double tol = 1e-10;            ///< Early-exit on eigenvector movement.
  uint64_t seed = 29;            ///< Start-vector randomization.
};

/// \brief Fits PCA on the rows of `points` (covariance power iteration with
/// deflation). num_components must be in [1, cols].
Result<PcaModel> FitPca(const Matrix& points, const PcaOptions& options);

/// \brief Projects rows into the fitted basis: (x - mean) * components^T.
Result<Matrix> PcaTransform(const PcaModel& model, const Matrix& points);

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_PCA_H_
