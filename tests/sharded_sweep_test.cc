// core::ShardedSweep — the out-of-core driver's one load-bearing promise is
// that sharding and eviction are INVISIBLE to the optimization trajectory: a
// sharded run over an mmap-backed store walks bit-identical assignments,
// objective histories and pruning counters to an in-process
// SweepMode::kParallelSnapshot run over the same rows with an equal seed.
// This suite pins that equivalence (pruning on and off, cold init and warm
// start, uninterrupted and cancel/resume), the shard-geometry rules, and the
// eviction telemetry.

#include "core/sharded_sweep.h"

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/status.h"
#include "core/solver.h"
#include "data/point_store.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace core {
namespace {

using testutil::MakeSeededWorld;
using testutil::SeededWorld;
using testutil::WorldSpec;

class ShardedSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("fairkm_sharded_sweep_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(io::CreateDirectories(dir_).ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

WorldSpec BigWorldSpec() {
  WorldSpec spec;
  spec.blobs = 4;
  spec.per_blob = 50;  // n = 200 -> several mini-batches per sweep
  spec.dim = 5;
  spec.k = 4;
  return spec;
}

FairKMOptions SnapshotOptions(bool pruning) {
  FairKMOptions options;
  options.k = 4;
  options.lambda = -1.0;  // auto (n/k)^2
  options.max_iterations = 6;
  options.minibatch_size = 32;
  options.sweep_mode = SweepMode::kParallelSnapshot;
  options.num_threads = 2;
  options.enable_pruning = pruning;
  return options;
}

std::shared_ptr<const data::PointStore> MmapStore(const data::Matrix& points,
                                                  const std::string& path) {
  data::PointStoreSpec spec;
  spec.backend = data::PointStoreSpec::Backend::kMmap;
  spec.path = path;
  return data::PointStore::Create(points, spec).ValueOrDie();
}

// Everything a trajectory comparison needs, captured from a finished solver.
struct Trajectory {
  cluster::Assignment assignment;
  std::vector<double> objective_history;
  int sweeps = 0;
  bool converged = false;
  double kmeans_term = 0.0;
  double fairness_term = 0.0;
  double kmeans_objective = 0.0;
  double total_objective = 0.0;
  uint64_t total_candidates = 0;
  uint64_t pruned_candidates = 0;
};

Trajectory Capture(const FairKMSolver& solver) {
  Trajectory t;
  t.assignment = solver.assignment();
  t.objective_history = solver.objective_history();
  t.sweeps = solver.sweeps_completed();
  t.converged = solver.converged();
  const FairKMResult result = solver.CurrentResult().ValueOrDie();
  t.kmeans_term = result.kmeans_term;
  t.fairness_term = result.fairness_term;
  t.kmeans_objective = result.kmeans_objective;
  t.total_objective = result.total_objective;
  t.total_candidates = result.total_candidates;
  t.pruned_candidates = result.pruned_candidates;
  return t;
}

// Bit-identical means EXACT doubles, not tolerances.
void ExpectIdentical(const Trajectory& a, const Trajectory& b,
                     const char* what) {
  EXPECT_EQ(a.assignment, b.assignment) << what;
  EXPECT_EQ(a.objective_history, b.objective_history) << what;
  EXPECT_EQ(a.sweeps, b.sweeps) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.kmeans_term, b.kmeans_term) << what;
  EXPECT_EQ(a.fairness_term, b.fairness_term) << what;
  EXPECT_EQ(a.kmeans_objective, b.kmeans_objective) << what;
  EXPECT_EQ(a.total_objective, b.total_objective) << what;
  EXPECT_EQ(a.total_candidates, b.total_candidates) << what;
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates) << what;
}

Trajectory RunInProcess(const SeededWorld& world, const FairKMOptions& options,
                        uint64_t seed) {
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_TRUE(solver.Init(seed).ok());
  EXPECT_TRUE(solver.Run().ok());
  return Capture(solver);
}

TEST_F(ShardedSweepTest, BitIdenticalToInProcessSweepAcrossPruning) {
  const SeededWorld world = MakeSeededWorld(501, BigWorldSpec());
  for (const bool pruning : {true, false}) {
    const FairKMOptions options = SnapshotOptions(pruning);
    const Trajectory in_process = RunInProcess(world, options, 91);

    auto store = MmapStore(world.points,
                           Path(pruning ? "prune.fkps" : "noprune.fkps"));
    ShardedSweep sweep =
        ShardedSweep::Create(store, &world.sensitive, options, 4).ValueOrDie();
    ASSERT_TRUE(sweep.Init(uint64_t{91}).ok());
    ASSERT_TRUE(sweep.Run().ok());

    ExpectIdentical(Capture(sweep.solver()), in_process,
                    pruning ? "pruning on" : "pruning off");
    // The sharded run actually evicted (the equivalence would be vacuous if
    // the residency control never ran).
    EXPECT_GT(sweep.stats().evictions, 0u);
  }
}

TEST_F(ShardedSweepTest, MemoryStoreBackedSolverMatchesMatrixSolver) {
  const SeededWorld world = MakeSeededWorld(502, BigWorldSpec());
  const FairKMOptions options = SnapshotOptions(/*pruning=*/true);
  const Trajectory from_matrix = RunInProcess(world, options, 17);

  const auto store =
      data::PointStore::Create(world.points,
                               data::PointStoreSpec::Parse("mem").ValueOrDie())
          .ValueOrDie();
  FairKMSolver solver =
      FairKMSolver::Create(store, &world.sensitive, options).ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{17}).ok());
  ASSERT_TRUE(solver.Run().ok());
  ExpectIdentical(Capture(solver), from_matrix, "mem store vs matrix");
  EXPECT_EQ(solver.points(), nullptr);
  ASSERT_NE(solver.store(), nullptr);
}

TEST_F(ShardedSweepTest, WarmStartIsBitIdenticalToo) {
  const SeededWorld world = MakeSeededWorld(503, BigWorldSpec());
  const FairKMOptions options = SnapshotOptions(/*pruning=*/true);

  FairKMSolver in_process =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(in_process.Init(world.assignment).ok());
  ASSERT_TRUE(in_process.Run().ok());

  auto store = MmapStore(world.points, Path("warm.fkps"));
  ShardedSweep sweep =
      ShardedSweep::Create(store, &world.sensitive, options, 3).ValueOrDie();
  ASSERT_TRUE(sweep.Init(world.assignment).ok());
  ASSERT_TRUE(sweep.Run().ok());

  ExpectIdentical(Capture(sweep.solver()), Capture(in_process), "warm start");
}

TEST_F(ShardedSweepTest, CancelAndResumeReplaysTheUninterruptedRun) {
  const SeededWorld world = MakeSeededWorld(504, BigWorldSpec());
  const FairKMOptions options = SnapshotOptions(/*pruning=*/true);
  const Trajectory uninterrupted = RunInProcess(world, options, 43);

  auto store = MmapStore(world.points, Path("cancel.fkps"));
  ShardedSweep sweep =
      ShardedSweep::Create(store, &world.sensitive, options, 4).ValueOrDie();
  ASSERT_TRUE(sweep.Init(uint64_t{43}).ok());

  // Cancel mid-sweep at the third batch boundary, then resume to the end.
  int boundaries = 0;
  const RunStop stop =
      sweep.Run({}, [&boundaries](const SweepProgress&) {
             return ++boundaries < 3;
           }).ValueOrDie();
  EXPECT_EQ(stop, RunStop::kCancelled);
  ASSERT_TRUE(sweep.Run().ok());

  ExpectIdentical(Capture(sweep.solver()), uninterrupted, "cancel + resume");
}

TEST_F(ShardedSweepTest, ShardGeometryRespectsBatchBoundaries) {
  const SeededWorld world = MakeSeededWorld(505, BigWorldSpec());
  auto store = MmapStore(world.points, Path("geometry.fkps"));

  // n = 200, minibatch 64 -> 4 batches: a 16-shard request clamps to 4.
  FairKMOptions options = SnapshotOptions(/*pruning=*/true);
  options.minibatch_size = 64;
  {
    ShardedSweep sweep =
        ShardedSweep::Create(store, &world.sensitive, options, 16)
            .ValueOrDie();
    EXPECT_LE(sweep.stats().num_shards, 4);
    EXPECT_GE(sweep.stats().num_shards, 1);
    EXPECT_EQ(sweep.stats().shard_rows % 64, 0u);
  }
  {
    // num_shards <= 0 resolves to a positive default.
    ShardedSweep sweep =
        ShardedSweep::Create(store, &world.sensitive, options, 0).ValueOrDie();
    EXPECT_GT(sweep.stats().num_shards, 0);
    EXPECT_EQ(sweep.stats().shard_rows % 64, 0u);
  }
}

TEST_F(ShardedSweepTest, EvictionTelemetryAndSessionReuse) {
  const SeededWorld world = MakeSeededWorld(506, BigWorldSpec());
  const FairKMOptions options = SnapshotOptions(/*pruning=*/false);
  auto store = MmapStore(world.points, Path("telemetry.fkps"));

  ShardedSweep sweep =
      ShardedSweep::Create(store, &world.sensitive, options, 4).ValueOrDie();
  ASSERT_TRUE(sweep.Init(uint64_t{7}).ok());
  ASSERT_TRUE(sweep.Run().ok());
  const uint64_t first_run_evictions = sweep.stats().evictions;
  // Every completed sweep evicts every shard once.
  EXPECT_GE(first_run_evictions,
            static_cast<uint64_t>(sweep.stats().num_shards));
  const Trajectory first = Capture(sweep.solver());

  // Re-Init drives a second, independent run through the same session and
  // store; evicted pages refault transparently.
  ASSERT_TRUE(sweep.Init(uint64_t{7}).ok());
  ASSERT_TRUE(sweep.Run().ok());
  EXPECT_GT(sweep.stats().evictions, first_run_evictions);
  ExpectIdentical(Capture(sweep.solver()), first, "re-Init replay");
}

TEST_F(ShardedSweepTest, CreateRejectsBadInputs) {
  const SeededWorld world = MakeSeededWorld(507, BigWorldSpec());
  const FairKMOptions options = SnapshotOptions(/*pruning=*/true);
  auto store = MmapStore(world.points, Path("reject.fkps"));

  EXPECT_EQ(ShardedSweep::Create(nullptr, &world.sensitive, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedSweep::Create(std::make_shared<const data::PointStore>(),
                                 &world.sensitive, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ShardedSweep::Create(store, nullptr, options).status().code(),
            StatusCode::kInvalidArgument);

  FairKMOptions serial = options;
  serial.sweep_mode = SweepMode::kSerial;
  serial.minibatch_size = 0;
  const auto wrong_mode = ShardedSweep::Create(store, &world.sensitive, serial);
  ASSERT_FALSE(wrong_mode.ok());
  EXPECT_EQ(wrong_mode.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_mode.status().message().find("kParallelSnapshot"),
            std::string::npos);

  FairKMOptions invalid = options;
  invalid.k = 0;
  EXPECT_EQ(ShardedSweep::Create(store, &world.sensitive, invalid)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedSweepTest, StoreBackedInitSupportsOnlyRandomAssignment) {
  const SeededWorld world = MakeSeededWorld(508, BigWorldSpec());
  FairKMOptions options = SnapshotOptions(/*pruning=*/true);
  options.init = cluster::KMeansInit::kKMeansPlusPlus;
  auto store = MmapStore(world.points, Path("init.fkps"));

  ShardedSweep sweep =
      ShardedSweep::Create(store, &world.sensitive, options, 2).ValueOrDie();
  const Status st = sweep.Init(uint64_t{5});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // A warm-start assignment sidesteps the restriction.
  ASSERT_TRUE(sweep.Init(world.assignment).ok());
  EXPECT_TRUE(sweep.Run().ok());
}

}  // namespace
}  // namespace core
}  // namespace fairkm
