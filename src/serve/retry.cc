#include "serve/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace fairkm {
namespace serve {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

double BackoffCeilingSeconds(const RetryPolicy& policy, int retry) {
  double ceiling = policy.initial_backoff_seconds;
  for (int i = 1; i < retry; ++i) {
    ceiling *= policy.backoff_multiplier;
    if (ceiling >= policy.max_backoff_seconds) break;
  }
  return std::clamp(ceiling, 0.0, policy.max_backoff_seconds);
}

Result<cluster::Assignment> AssignWithRetry(
    AssignService& service, const data::Matrix& points,
    const data::SensitiveView* sensitive, const AssignRequestOptions& request,
    const RetryPolicy& policy, Rng* rng) {
  const int attempts = std::max(policy.max_attempts, 1);
  Result<cluster::Assignment> result =
      Status::Internal("AssignWithRetry made no attempt");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    result = service.Assign(points, sensitive, request);
    if (result.ok() || !IsRetryable(result.status())) return result;
    if (attempt == attempts) break;
    const double ceiling = BackoffCeilingSeconds(policy, attempt);
    const double sleep_seconds =
        rng != nullptr ? rng->UniformDouble() * ceiling : ceiling;
    if (sleep_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
    }
  }
  return result;
}

}  // namespace serve
}  // namespace fairkm
