#include "exp/datasets.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace fairkm {
namespace exp {
namespace {

TEST(AdultExperimentTest, SubsampledLoadHasExpectedShape) {
  AdultExperimentOptions opt;
  opt.subsample = 1200;
  auto r = LoadAdultExperiment(opt);
  ASSERT_TRUE(r.ok());
  const ExperimentData& data = r.ValueOrDie();
  EXPECT_EQ(data.name, "adult");
  EXPECT_EQ(data.features.rows(), 1200u);
  EXPECT_EQ(data.features.cols(), 8u);
  EXPECT_EQ(data.sensitive.categorical.size(), 5u);
  EXPECT_EQ(data.sensitive.num_rows(), 1200u);
  EXPECT_DOUBLE_EQ(data.paper_lambda, 1e6);
}

TEST(AdultExperimentTest, FeaturesAreMinMaxScaled) {
  AdultExperimentOptions opt;
  opt.subsample = 2000;
  auto data = LoadAdultExperiment(opt).ValueOrDie();
  for (size_t j = 0; j < data.features.cols(); ++j) {
    RunningStats rs;
    for (size_t i = 0; i < data.features.rows(); ++i) rs.Add(data.features.At(i, j));
    EXPECT_GE(rs.min(), 0.0) << "col " << j;
    EXPECT_LE(rs.max(), 1.0) << "col " << j;
    // Subsampling happens before scaling, so each column spans [0, 1].
    EXPECT_NEAR(rs.min(), 0.0, 1e-9) << "col " << j;
    EXPECT_NEAR(rs.max(), 1.0, 1e-9) << "col " << j;
  }
}

TEST(AdultExperimentTest, SensitiveCardinalitiesMatchPaper) {
  AdultExperimentOptions opt;
  opt.subsample = 800;
  auto data = LoadAdultExperiment(opt).ValueOrDie();
  std::vector<int> cards;
  for (const auto& attr : data.sensitive.categorical) {
    cards.push_back(attr.cardinality);
  }
  EXPECT_EQ(cards, (std::vector<int>{7, 6, 5, 2, 41}));
}

TEST(KinematicsExperimentTest, LoadHasExpectedShape) {
  auto r = LoadKinematicsExperiment();
  ASSERT_TRUE(r.ok());
  const ExperimentData& data = r.ValueOrDie();
  EXPECT_EQ(data.name, "kinematics");
  EXPECT_EQ(data.features.rows(), 161u);
  EXPECT_EQ(data.features.cols(), 100u);
  EXPECT_EQ(data.sensitive.categorical.size(), 5u);
  EXPECT_DOUBLE_EQ(data.paper_lambda, 1e3);
  for (const auto& attr : data.sensitive.categorical) {
    EXPECT_EQ(attr.cardinality, 2);
  }
}

TEST(KinematicsExperimentTest, EmbeddingsStayRawUnitNorm) {
  auto data = LoadKinematicsExperiment().ValueOrDie();
  for (size_t i = 0; i < data.features.rows(); ++i) {
    double norm2 = 0.0;
    for (size_t j = 0; j < data.features.cols(); ++j) {
      norm2 += data.features.At(i, j) * data.features.At(i, j);
    }
    EXPECT_NEAR(norm2, 1.0, 1e-9) << "row " << i;
  }
}

TEST(KinematicsExperimentTest, DeterministicForSeed) {
  auto a = LoadKinematicsExperiment(7).ValueOrDie();
  auto b = LoadKinematicsExperiment(7).ValueOrDie();
  EXPECT_EQ(a.features.data(), b.features.data());
}

}  // namespace
}  // namespace exp
}  // namespace fairkm
