#include "text/random_projection.h"

#include <cmath>

#include "common/rng.h"

namespace fairkm {
namespace text {

data::Matrix ProjectToDense(const std::vector<SparseVector>& docs, size_t vocab_size,
                            size_t dim, uint64_t seed) {
  // Projection matrix R: vocab_size x dim with N(0, 1/dim) entries. The
  // vocabularies here are small (hundreds of terms), so materializing R is
  // cheap and keeps the projection exactly reproducible.
  Rng rng(seed);
  data::Matrix projection(vocab_size, dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (size_t t = 0; t < vocab_size; ++t) {
    double* row = projection.Row(t);
    for (size_t d = 0; d < dim; ++d) row[d] = rng.Normal() * scale;
  }

  data::Matrix out(docs.size(), dim);
  for (size_t i = 0; i < docs.size(); ++i) {
    double* dst = out.Row(i);
    for (const auto& [term, weight] : docs[i].entries) {
      const double* src = projection.Row(static_cast<size_t>(term));
      for (size_t d = 0; d < dim; ++d) dst[d] += weight * src[d];
    }
    double norm = 0.0;
    for (size_t d = 0; d < dim; ++d) norm += dst[d] * dst[d];
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (size_t d = 0; d < dim; ++d) dst[d] /= norm;
    }
  }
  return out;
}

}  // namespace text
}  // namespace fairkm
