// Reproduces paper Figure 5: Kinematics — CO and SH vs lambda in
// [1000, 10000], FairKM over all sensitive attributes, k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 5 — Kinematics: (CO, SH) vs lambda", env);
  RunLambdaSweep(KinematicsData(), "quality", env);
  return 0;
}
