// AVX2/FMA backend. This translation unit — and only this one — is compiled
// with -mavx2 -mfma (see src/CMakeLists.txt), so the rest of the binary
// stays runnable on baseline x86-64; nothing here executes unless
// kernels_dispatch.cc's cpuid check passed.
//
// Dot/Gemv use multi-accumulator FMA loops (reassociated relative to the
// scalar backend; callers tolerate 1e-9). CatMoments deliberately avoids FMA
// and mirrors the scalar backend's 4-lane blocked accumulation and reduction
// tree exactly, so the fairness moments are bit-for-bit backend-independent.

#include "core/kernels/kernels.h"

#if defined(FAIRKM_HAVE_AVX2)

#include <immintrin.h>

namespace fairkm {
namespace core {
namespace kernels {
namespace {

// Lanes (l0+l2, l1+l3) -> (l0+l2)+(l1+l3): the reduction order
// CatMomentsScalar replays in plain code.
inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 4),
                           _mm256_loadu_pd(b + j + 4), acc1);
  }
  if (j + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j), acc0);
    j += 4;
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) total += a[j] * b[j];
  return total;
}

// Two matrix rows share every load of x, halving the x-stream traffic of the
// row-at-a-time formulation; the odd row falls back to the plain dot.
void GemvAvx2(const double* x, const double* mat, size_t rows, size_t cols,
              double* out) {
  size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* m0 = mat + r * cols;
    const double* m1 = m0 + cols;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const __m256d xv = _mm256_loadu_pd(x + j);
      acc0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(m0 + j), acc0);
      acc1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(m1 + j), acc1);
    }
    double d0 = HorizontalSum(acc0);
    double d1 = HorizontalSum(acc1);
    for (; j < cols; ++j) {
      d0 += x[j] * m0[j];
      d1 += x[j] * m1[j];
    }
    out[r] = d0;
    out[r + 1] = d1;
  }
  if (r < rows) out[r] = DotAvx2(x, mat + r * cols, cols);
}

void CatMomentsAvx2(const int64_t* counts, const double* fractions, size_t m,
                    double size, double* u2, double* uq) {
  const __m256d sz = _mm256_set1_pd(size);
  __m256d u2v = _mm256_setzero_pd();
  __m256d uqv = _mm256_setzero_pd();
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    const __m256d q = _mm256_loadu_pd(fractions + s);
    // No packed epi64->pd conversion below AVX-512; four scalar converts.
    const __m256d c = _mm256_set_pd(static_cast<double>(counts[s + 3]),
                                    static_cast<double>(counts[s + 2]),
                                    static_cast<double>(counts[s + 1]),
                                    static_cast<double>(counts[s]));
    const __m256d u = _mm256_sub_pd(c, _mm256_mul_pd(sz, q));
    u2v = _mm256_add_pd(u2v, _mm256_mul_pd(u, u));
    uqv = _mm256_add_pd(uqv, _mm256_mul_pd(u, q));
  }
  double u2_tail = 0.0, uq_tail = 0.0;
  for (; s < m; ++s) {
    const double q = fractions[s];
    const double u = static_cast<double>(counts[s]) - size * q;
    u2_tail += u * u;
    uq_tail += u * q;
  }
  *u2 = HorizontalSum(u2v) + u2_tail;
  *uq = HorizontalSum(uqv) + uq_tail;
}

const Backend kAvx2Backend = {"avx2-fma", DotAvx2, GemvAvx2, CatMomentsAvx2};

}  // namespace

// Called by kernels_dispatch.cc after its cpuid check succeeded.
const Backend& Avx2BackendImpl() { return kAvx2Backend; }

}  // namespace kernels
}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_HAVE_AVX2
