// TSan-scoped stress: concurrent Admit/Retire writers against a live
// OnlineFairKM while AssignService readers score requests and a drift
// re-sweep republishes mid-flight. The invariants under race:
//   * readers never observe a torn snapshot — every pinned generation is a
//     complete immutable model, and per reader the observed generation
//     numbers are monotonically non-decreasing;
//   * the serve-side request cache (enabled here to put its locking under
//     TSan too) never serves an answer across generations;
//   * after quiesce, Flush() still satisfies the batch-rebuild oracle —
//     the concurrent traffic corrupted nothing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairkm_state.h"
#include "online/online_fairkm.h"
#include "serve/assign_service.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace online {
namespace {

using testutil::MakeBlobs;
using testutil::MakeCategorical;
using testutil::MakeNumeric;
using testutil::MakeSeededWorld;
using testutil::MakeView;
using testutil::RandomCodes;
using testutil::SeededWorld;

data::SensitiveView MakeAdmitView(const data::SensitiveView& training,
                                  size_t rows, Rng* rng) {
  data::SensitiveView view;
  for (const auto& attr : training.categorical) {
    data::CategoricalSensitive a;
    a.name = attr.name;
    a.cardinality = attr.cardinality;
    a.weight = attr.weight;
    a.codes = RandomCodes(rows, attr.cardinality, rng);
    a.dataset_fractions.assign(static_cast<size_t>(attr.cardinality), 0.0);
    view.categorical.push_back(std::move(a));
  }
  for (const auto& attr : training.numeric) {
    data::NumericSensitive a;
    a.name = attr.name;
    a.weight = attr.weight;
    a.values.resize(rows);
    for (double& v : a.values) v = rng->Normal(0.0, 1.0);
    view.numeric.push_back(std::move(a));
  }
  return view;
}

// Quiesced-engine oracle (compact form of the online_fairkm_test helper):
// Flush, then a fresh state over the surviving rows must agree bit-for-bit.
void ExpectOracleEquality(OnlineFairKM* engine) {
  ASSERT_TRUE(engine->Flush().ok());
  const data::Matrix points = engine->SurvivingPoints();
  const data::SensitiveView survived = engine->SurvivingSensitive();
  std::vector<data::CategoricalSensitive> cats;
  for (const auto& attr : survived.categorical) {
    data::CategoricalSensitive fresh =
        MakeCategorical(attr.codes, attr.cardinality, attr.name);
    fresh.weight = attr.weight;
    cats.push_back(std::move(fresh));
  }
  data::SensitiveView fresh_view = MakeView(std::move(cats));
  for (const auto& attr : survived.numeric) {
    data::NumericSensitive fresh = MakeNumeric(attr.values, attr.name);
    fresh.weight = attr.weight;
    fresh_view.numeric.push_back(std::move(fresh));
  }
  auto fresh_result =
      core::FairKMState::Create(&points, &fresh_view, engine->solver().k(),
                                engine->CurrentAssignment());
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.status().ToString();
  core::FairKMState fresh = std::move(fresh_result).ValueOrDie();
  const core::FairKMState& live = engine->solver().state();
  core::FairKMState::Checkpoint a, b;
  live.SaveCheckpoint(&a);
  fresh.SaveCheckpoint(&b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_TRUE(a.sums == b.sums) << "cluster feature sums drifted";
  EXPECT_EQ(a.cat_counts, b.cat_counts);
  EXPECT_EQ(a.cat_u2, b.cat_u2);
  EXPECT_EQ(a.cat_uq, b.cat_uq);
  EXPECT_EQ(live.KMeansTermCached(), fresh.KMeansTermCached());
  EXPECT_EQ(live.FairnessTermCached(), fresh.FairnessTermCached());
}

TEST(OnlineStress, ConcurrentAdmitRetireAssignAndResweep) {
  const SeededWorld world = MakeSeededWorld(501);
  OnlineOptions options;
  options.solver.k = world.k;
  options.solver.lambda = 60.0;
  options.drift.regression_tolerance = 1e12;  // Re-sweeps are forced below.
  options.drift.resweep_max_sweeps = 1;

  serve::AssignServiceOptions serve_options;
  serve_options.request_cache_capacity = 8;  // Cache locking under TSan too.
  serve::AssignService service(serve_options);
  auto created = OnlineFairKM::Create(world.points, world.sensitive, options,
                                      /*seed=*/17, &service);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<OnlineFairKM> engine = std::move(created).ValueOrDie();

  // Fixed probe request the readers score over and over (so cache hits and
  // misses both happen while generations churn underneath).
  Rng probe_rng(71);
  const size_t dim = world.points.cols();
  const data::Matrix probe =
      MakeBlobs(1, 8, static_cast<int>(dim), &probe_rng);
  const data::SensitiveView probe_view =
      MakeAdmitView(world.sensitive, 8, &probe_rng);

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<int> generation_regressions{0};
  std::atomic<uint64_t> reader_requests{0};

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      uint64_t last_generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = service.snapshot();
        if (snap != nullptr) {
          if (snap->version() < last_generation) {
            generation_regressions.fetch_add(1);
          }
          last_generation = snap->version();
        }
        auto result = service.Assign(probe, &probe_view);
        if (!result.ok()) {
          reader_failures.fetch_add(1);
        } else if (result.ValueOrDie().size() != probe.rows()) {
          reader_failures.fetch_add(1);  // Torn/partial answer.
        } else {
          reader_requests.fetch_add(1);
        }
        (void)t;
      }
    });
  }

  // Writer: admit bursts, retire some of what it admitted, force a bounded
  // re-sweep (flush + budgeted sweeps + republish) every few rounds.
  Rng rng(313);
  for (int round = 0; round < 30; ++round) {
    const data::Matrix pts = MakeBlobs(1, 3, static_cast<int>(dim), &rng);
    const data::SensitiveView sv = MakeAdmitView(world.sensitive, 3, &rng);
    auto ids = engine->Admit(pts, &sv);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    if (round % 3 == 2) {
      const Status st = engine->Retire({ids.ValueOrDie()[0]});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    if (round % 7 == 6) {
      const Status st = engine->TriggerResweep();
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }

  // On a loaded host the writer can finish before a reader is first
  // scheduled: keep serving until the readers have demonstrably scored
  // repeated requests against the final generation (repeats are what makes
  // the cache-hit assertion below meaningful).
  while (reader_failures.load() == 0 &&
         reader_requests.load() < static_cast<uint64_t>(4 * kReaders)) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(generation_regressions.load(), 0);

  const OnlineStats stats = engine->Stats();
  EXPECT_EQ(stats.admitted, 90u);
  EXPECT_EQ(stats.retired, 10u);
  EXPECT_GE(stats.resweeps, 4u);
  EXPECT_EQ(stats.generation, 1u + stats.resweeps);
  const auto snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), stats.generation);

  // The concurrent traffic must not have corrupted the live aggregates.
  ExpectOracleEquality(engine.get());

  const serve::ServeMetrics metrics = service.Metrics();
  EXPECT_GT(metrics.requests, 0u);
  EXPECT_EQ(metrics.errors, 0u);
  // The probe repeats, so the cache must have both hit (between publishes)
  // and missed (after each invalidating publish).
  EXPECT_GT(metrics.cache_hits, 0u);
  EXPECT_GT(metrics.cache_misses, 0u);
}

}  // namespace
}  // namespace online
}  // namespace fairkm
