// Minimal RFC-4180-ish CSV codec for dataset import/export.
//
// Supports quoted fields with embedded delimiters, escaped quotes ("") and
// embedded newlines. Streams row-by-row; no full-file buffering on read.

#ifndef FAIRKM_COMMON_CSV_H_
#define FAIRKM_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fairkm {

/// \brief In-memory CSV table: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return header.size(); }

  /// \brief Index of a header column, or error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text. When `has_header` is false a synthetic header
/// c0..c{n-1} is created from the first row's width.
Result<CsvTable> ParseCsv(const std::string& text, char delim = ',',
                          bool has_header = true);

/// \brief Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, char delim = ',',
                             bool has_header = true);

/// \brief Serializes a table, quoting fields only when necessary.
std::string WriteCsv(const CsvTable& table, char delim = ',');

/// \brief Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path, char delim = ',');

}  // namespace fairkm

#endif  // FAIRKM_COMMON_CSV_H_
