#include "metrics/hungarian.h"

#include <limits>

namespace fairkm {
namespace metrics {

// Classic potentials ("e-maxx") formulation with 1-based auxiliary arrays.
Result<double> HungarianAssign(const data::Matrix& cost, std::vector<int>* matching) {
  const size_t r = cost.rows();
  const size_t c = cost.cols();
  if (r == 0 || c == 0) return Status::InvalidArgument("empty cost matrix");
  if (r > c) return Status::InvalidArgument("cost matrix needs rows <= cols");

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(r + 1, 0.0), v(c + 1, 0.0);
  std::vector<size_t> match(c + 1, 0);  // match[j] = row matched to column j.
  std::vector<size_t> way(c + 1, 0);

  for (size_t i = 1; i <= r; ++i) {
    match[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(c + 1, kInf);
    std::vector<bool> used(c + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = match[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= c; ++j) {
        if (used[j]) continue;
        const double cur = cost.At(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= c; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the found path.
    do {
      const size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  matching->assign(r, -1);
  double total = 0.0;
  for (size_t j = 1; j <= c; ++j) {
    if (match[j] == 0) continue;
    (*matching)[match[j] - 1] = static_cast<int>(j - 1);
    total += cost.At(match[j] - 1, j - 1);
  }
  return total;
}

}  // namespace metrics
}  // namespace fairkm
