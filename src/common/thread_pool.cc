#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fairkm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  num_threads = std::min(std::max<size_t>(1, num_threads), count);
  if (num_threads == 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace fairkm
