#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace fairkm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // A theoretically possible all-zero state would lock the generator at zero.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  FAIRKM_DCHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FAIRKM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  FAIRKM_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FAIRKM_DCHECK(w >= 0.0);
    total += w;
  }
  FAIRKM_DCHECK(total > 0.0);
  double draw = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  FAIRKM_DCHECK(count <= n);
  // Partial Fisher-Yates over an index vector: O(n) memory, O(n + count) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA02BDBF7BB3C0A7ULL); }

}  // namespace fairkm
