#include "data/adult_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "data/preprocess.h"

namespace fairkm {
namespace data {
namespace {

// ---------------------------------------------------------------------------
// Category dictionaries. Cardinalities match the paper's Table 3 exactly:
// marital 7, relationship 6, race 5, gender 2, native country 41.
// ---------------------------------------------------------------------------

const std::vector<std::string>& GenderLabels() {
  static const std::vector<std::string> kLabels = {"Male", "Female"};
  return kLabels;
}

const std::vector<std::string>& RaceLabels() {
  static const std::vector<std::string> kLabels = {
      "White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"};
  return kLabels;
}

const std::vector<std::string>& MaritalLabels() {
  static const std::vector<std::string> kLabels = {
      "Married-civ-spouse", "Never-married",         "Divorced", "Separated",
      "Widowed",            "Married-spouse-absent", "Married-AF-spouse"};
  return kLabels;
}

const std::vector<std::string>& RelationshipLabels() {
  static const std::vector<std::string> kLabels = {
      "Husband", "Not-in-family", "Own-child", "Unmarried", "Wife", "Other-relative"};
  return kLabels;
}

const std::vector<std::string>& CountryLabels() {
  static const std::vector<std::string> kLabels = {
      "United-States", "Mexico",        "Philippines", "Germany",
      "Canada",        "Puerto-Rico",   "El-Salvador", "India",
      "Cuba",          "England",       "Jamaica",     "South",
      "China",         "Italy",         "Dominican-Republic", "Vietnam",
      "Guatemala",     "Japan",         "Poland",      "Columbia",
      "Taiwan",        "Haiti",         "Iran",        "Portugal",
      "Nicaragua",     "Peru",          "Greece",      "France",
      "Ecuador",       "Ireland",       "Hong",        "Trinadad&Tobago",
      "Cambodia",      "Laos",          "Thailand",    "Yugoslavia",
      "Outlying-US",   "Hungary",       "Honduras",    "Scotland",
      "Holand-Netherlands"};
  return kLabels;
}

// Latent socioeconomic profiles driving the numeric task attributes.
enum Profile : int {
  kProfessional = 0,
  kWhiteCollar = 1,
  kClerical = 2,
  kBlueCollar = 3,
  kService = 4,
  kPartTime = 5,
  kNumProfiles = 6,
};

// P(profile | gender, race): moderate, deliberate skew. This is the channel
// through which gender/race information leaks into the task attributes N, so
// that an S-blind clustering on N is demographically skewed (paper §3).
std::vector<double> ProfileWeights(int gender, int race) {
  // Baseline: professional, white-collar, clerical, blue-collar, service, part-time.
  std::vector<double> w = {0.14, 0.18, 0.15, 0.28, 0.15, 0.10};
  if (gender == 1) {  // Female: more clerical/service/part-time, less blue-collar.
    w = {0.11, 0.15, 0.26, 0.10, 0.22, 0.16};
  }
  switch (race) {
    case 1:  // Black: shifted towards service/blue-collar.
      w[0] *= 0.55;
      w[1] *= 0.75;
      w[4] *= 1.5;
      w[3] *= 1.2;
      break;
    case 2:  // Asian-Pac-Islander: shifted towards professional.
      w[0] *= 1.8;
      w[1] *= 1.2;
      break;
    case 3:  // Amer-Indian-Eskimo.
      w[0] *= 0.6;
      w[3] *= 1.3;
      break;
    case 4:  // Other.
      w[0] *= 0.6;
      w[4] *= 1.35;
      break;
    default:
      break;
  }
  return w;
}

// P(marital | gender).
std::vector<double> MaritalWeights(int gender) {
  if (gender == 0) {
    // Male: married-civ, never, divorced, separated, widowed, absent, AF.
    return {0.56, 0.29, 0.10, 0.02, 0.015, 0.013, 0.002};
  }
  return {0.26, 0.38, 0.21, 0.05, 0.075, 0.022, 0.003};
}

// P(relationship | gender, is_married_civ_or_af).
int SampleRelationship(Rng* rng, int gender, bool married) {
  if (married) {
    // Spouse role follows gender deterministically except for rare noise.
    if (rng->UniformDouble() < 0.985) return gender == 0 ? 0 : 4;  // Husband / Wife.
    return 5;  // Other-relative.
  }
  // Not married: not-in-family, own-child, unmarried, other-relative.
  const std::vector<double> w = {0.0, 0.45, 0.27, 0.21, 0.0, 0.07};
  return static_cast<int>(rng->Categorical(w));
}

// P(native country | race): US dominates; the tail decays geometrically and
// its composition shifts with race so that country correlates with race.
int SampleCountry(Rng* rng, int race) {
  double p_us = 0.92;
  if (race == 1) p_us = 0.90;
  if (race == 2) p_us = 0.62;  // Asian-Pac-Islander: biggest immigrant share.
  if (race == 3) p_us = 0.985;
  if (race == 4) p_us = 0.70;
  if (rng->UniformDouble() < p_us) return 0;

  const int num_countries = static_cast<int>(CountryLabels().size());
  std::vector<double> w(static_cast<size_t>(num_countries), 0.0);
  double decay = 1.0;
  for (int c = 1; c < num_countries; ++c) {
    w[static_cast<size_t>(c)] = decay;
    decay *= 0.88;
  }
  if (race == 2) {
    // Boost Asian countries: Philippines, India, China, Vietnam, Japan,
    // Taiwan, Hong, Cambodia, Laos, Thailand, South(-Korea).
    for (int c : {2, 7, 12, 15, 17, 20, 30, 32, 33, 34, 11}) {
      w[static_cast<size_t>(c)] *= 14.0;
    }
  } else if (race == 4) {
    // Boost Latin-American countries for "Other".
    for (int c : {1, 5, 6, 8, 14, 16, 19, 24, 25, 28, 38}) {
      w[static_cast<size_t>(c)] *= 8.0;
    }
  } else if (race == 1) {
    // Boost Caribbean countries for Black.
    for (int c : {10, 21, 31, 8, 14}) {
      w[static_cast<size_t>(c)] *= 6.0;
    }
  }
  return static_cast<int>(rng->Categorical(w));
}

double Clamp(double v, double lo, double hi) { return std::min(hi, std::max(lo, v)); }

struct Record {
  int gender, race, marital, relationship, country, profile;
  double age, education_num, hours, capital_gain_log, capital_loss_log;
  double occupation_skill, workclass_stability, tenure_years;
  double income_score;
};

Record GenerateRecord(Rng* rng) {
  Record r;
  r.gender = rng->UniformDouble() < 0.669 ? 0 : 1;
  r.race = static_cast<int>(rng->Categorical({0.854, 0.096, 0.031, 0.010, 0.009}));
  r.marital = static_cast<int>(rng->Categorical(MaritalWeights(r.gender)));
  const bool married = r.marital == 0 || r.marital == 6;
  r.relationship = SampleRelationship(rng, r.gender, married);
  r.country = SampleCountry(rng, r.race);
  r.profile = static_cast<int>(rng->Categorical(ProfileWeights(r.gender, r.race)));

  // Age by marital status.
  static const double kAgeMean[7] = {43.2, 28.4, 45.0, 40.8, 58.9, 42.2, 29.7};
  static const double kAgeSd[7] = {11.0, 9.5, 10.0, 10.5, 11.5, 11.0, 6.5};
  r.age = Clamp(rng->Normal(kAgeMean[r.marital], kAgeSd[r.marital]), 17, 90);

  // Education by profile with a race shift.
  static const double kEduMean[kNumProfiles] = {13.6, 12.4, 10.8, 9.3, 9.8, 10.4};
  static const double kEduRaceShift[5] = {0.0, -0.55, 0.65, -0.55, -0.60};
  r.education_num =
      Clamp(rng->Normal(kEduMean[r.profile] + kEduRaceShift[r.race], 2.0), 1, 16);

  // Hours per week by profile with a gender shift.
  static const double kHoursMean[kNumProfiles] = {45.5, 43.8, 38.9, 42.0, 37.5, 24.0};
  const double gender_hours = r.gender == 1 ? -3.6 : 0.0;
  r.hours = Clamp(rng->Normal(kHoursMean[r.profile] + gender_hours, 8.5), 1, 99);

  // Fiscal attributes: sparse heavy tails, stored on a log1p scale.
  static const double kGainProb[kNumProfiles] = {0.15, 0.10, 0.05, 0.035, 0.03, 0.02};
  r.capital_gain_log =
      rng->Bernoulli(kGainProb[r.profile]) ? rng->Normal(8.6, 1.1) : 0.0;
  if (r.capital_gain_log < 0) r.capital_gain_log = 0.0;
  r.capital_loss_log = rng->Bernoulli(0.047) ? rng->Normal(7.45, 0.35) : 0.0;
  if (r.capital_loss_log < 0) r.capital_loss_log = 0.0;

  // Occupation skill / workclass stability: continuous profile proxies.
  static const double kSkill[kNumProfiles] = {8.6, 7.1, 5.2, 4.1, 3.3, 2.8};
  r.occupation_skill = rng->Normal(kSkill[r.profile], 1.0);
  static const double kStability[kNumProfiles] = {6.8, 6.1, 5.6, 4.9, 4.2, 2.9};
  r.workclass_stability = rng->Normal(kStability[r.profile], 1.2);

  // Tenure grows with age.
  r.tenure_years = Clamp(0.38 * (r.age - 18.0) + rng->Normal(0.0, 4.0), 0.0, 55.0);

  // Socioeconomic score; ranking on it assigns the income label.
  r.income_score = 0.30 * r.education_num + 0.045 * r.hours +
                   0.52 * (r.capital_gain_log > 0 ? 1.0 : 0.0) * r.capital_gain_log /
                       8.6 * 8.0 +
                   0.34 * r.occupation_skill + 0.022 * r.age +
                   (r.gender == 0 ? 0.85 : 0.0) + (married ? 0.55 : 0.0) +
                   rng->Normal(0.0, 1.45);
  return r;
}

}  // namespace

const std::vector<std::string>& AdultSensitiveNames() {
  static const std::vector<std::string> kNames = {
      "marital_status", "relationship_status", "race", "gender", "native_country"};
  return kNames;
}

const std::vector<std::string>& AdultTaskNames() {
  static const std::vector<std::string> kNames = {
      "age",          "education_num",    "hours_per_week",      "capital_gain_log",
      "capital_loss_log", "occupation_skill", "workclass_stability", "tenure_years"};
  return kNames;
}

Result<Dataset> GenerateAdult(const AdultOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("AdultOptions.num_rows must be positive");
  }
  if (options.target_positive >= options.num_rows) {
    return Status::InvalidArgument("target_positive must be below num_rows");
  }
  Rng rng(options.seed);
  const size_t n = options.num_rows;
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) records.push_back(GenerateRecord(&rng));

  // Rank-based labelling: exactly target_positive rows become ">50K".
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (records[a].income_score != records[b].income_score) {
      return records[a].income_score > records[b].income_score;
    }
    return a < b;
  });
  std::vector<int32_t> income(n, 0);  // 0 = "<=50K", 1 = ">50K".
  for (size_t i = 0; i < options.target_positive; ++i) income[order[i]] = 1;

  Dataset out;
  auto numeric = [&](const std::string& name, auto getter) {
    std::vector<double> values;
    values.reserve(n);
    for (const auto& r : records) values.push_back(getter(r));
    out.AddNumeric(name, std::move(values)).Abort();
  };
  numeric("age", [](const Record& r) { return r.age; });
  numeric("education_num", [](const Record& r) { return r.education_num; });
  numeric("hours_per_week", [](const Record& r) { return r.hours; });
  numeric("capital_gain_log", [](const Record& r) { return r.capital_gain_log; });
  numeric("capital_loss_log", [](const Record& r) { return r.capital_loss_log; });
  numeric("occupation_skill", [](const Record& r) { return r.occupation_skill; });
  numeric("workclass_stability",
          [](const Record& r) { return r.workclass_stability; });
  numeric("tenure_years", [](const Record& r) { return r.tenure_years; });

  auto categorical = [&](const std::string& name, const std::vector<std::string>& labels,
                         auto getter) {
    std::vector<int32_t> codes;
    codes.reserve(n);
    for (const auto& r : records) codes.push_back(static_cast<int32_t>(getter(r)));
    out.AddCategorical(name, std::move(codes), labels).Abort();
  };
  categorical("marital_status", MaritalLabels(),
              [](const Record& r) { return r.marital; });
  categorical("relationship_status", RelationshipLabels(),
              [](const Record& r) { return r.relationship; });
  categorical("race", RaceLabels(), [](const Record& r) { return r.race; });
  categorical("gender", GenderLabels(), [](const Record& r) { return r.gender; });
  categorical("native_country", CountryLabels(),
              [](const Record& r) { return r.country; });
  out.AddCategorical("income", std::move(income), {"<=50K", ">50K"}).Abort();
  return out;
}

Result<Dataset> GenerateAdultParity(const AdultOptions& options) {
  FAIRKM_ASSIGN_OR_RETURN(Dataset full, GenerateAdult(options));
  Rng rng(options.seed ^ 0x5DEECE66DULL);
  return UndersampleToParity(full, "income", &rng);
}

}  // namespace data
}  // namespace fairkm
