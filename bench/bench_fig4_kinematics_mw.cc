// Reproduces paper Figure 4: Kinematics, Max Wasserstein (MW) per type
// attribute — ZGYA(S) vs FairKM (All) vs FairKM(S), k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 4 — Kinematics: MW comparison per attribute (k = 5)", env);
  RunFigureComparison(KinematicsData(), "mw", env);
  return 0;
}
