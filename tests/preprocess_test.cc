#include "data/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace fairkm {
namespace data {
namespace {

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  Matrix m(5, 2);
  double col0[5] = {1, 2, 3, 4, 5};
  double col1[5] = {10, 10, 20, 20, 40};
  for (size_t i = 0; i < 5; ++i) {
    m.At(i, 0) = col0[i];
    m.At(i, 1) = col1[i];
  }
  StandardizationParams params = Standardize(&m);
  for (size_t j = 0; j < 2; ++j) {
    RunningStats rs;
    for (size_t i = 0; i < 5; ++i) rs.Add(m.At(i, j));
    EXPECT_NEAR(rs.mean(), 0.0, 1e-12);
    EXPECT_NEAR(rs.stddev(), 1.0, 1e-12);
  }
  EXPECT_NEAR(params.means[0], 3.0, 1e-12);
}

TEST(StandardizeTest, ConstantColumnCentered) {
  Matrix m(4, 1, 7.0);
  Standardize(&m);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(m.At(i, 0), 0.0, 1e-12);
}

TEST(StandardizeTest, ApplyToHeldOutData) {
  Matrix train(4, 1);
  for (size_t i = 0; i < 4; ++i) train.At(i, 0) = static_cast<double>(i);
  StandardizationParams params = Standardize(&train);
  Matrix test(1, 1);
  test.At(0, 0) = 1.5;  // The training mean.
  ASSERT_TRUE(ApplyStandardization(params, &test).ok());
  EXPECT_NEAR(test.At(0, 0), 0.0, 1e-12);
}

TEST(StandardizeTest, ApplyRejectsWidthMismatch) {
  StandardizationParams params;
  params.means = {0.0};
  params.stddevs = {1.0};
  Matrix m(2, 2);
  EXPECT_FALSE(ApplyStandardization(params, &m).ok());
}

TEST(MinMaxTest, ScalesToUnitInterval) {
  Matrix m(4, 2);
  const double col0[4] = {2, 4, 6, 10};
  const double col1[4] = {-1, 0, 3, 1};
  for (size_t i = 0; i < 4; ++i) {
    m.At(i, 0) = col0[i];
    m.At(i, 1) = col1[i];
  }
  MinMaxParams params = MinMaxNormalize(&m);
  EXPECT_DOUBLE_EQ(params.mins[0], 2.0);
  EXPECT_DOUBLE_EQ(params.ranges[0], 8.0);
  for (size_t j = 0; j < 2; ++j) {
    double lo = 1e9, hi = -1e9;
    for (size_t i = 0; i < 4; ++i) {
      lo = std::min(lo, m.At(i, j));
      hi = std::max(hi, m.At(i, j));
    }
    EXPECT_DOUBLE_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, 1.0);
  }
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.25);  // (4 - 2) / 8.
}

TEST(MinMaxTest, ConstantColumnMapsToZero) {
  Matrix m(3, 1, 5.0);
  MinMaxNormalize(&m);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m.At(i, 0), 0.0);
}

TEST(MinMaxTest, ApplyToHeldOutData) {
  Matrix train(3, 1);
  train.At(0, 0) = 0;
  train.At(1, 0) = 5;
  train.At(2, 0) = 10;
  MinMaxParams params = MinMaxNormalize(&train);
  Matrix test(1, 1);
  test.At(0, 0) = 7.5;
  ASSERT_TRUE(ApplyMinMax(params, &test).ok());
  EXPECT_DOUBLE_EQ(test.At(0, 0), 0.75);
  Matrix wrong(1, 2);
  EXPECT_FALSE(ApplyMinMax(params, &wrong).ok());
}

Dataset MakeLabeled(size_t n_a, size_t n_b) {
  Dataset d;
  std::vector<double> x;
  std::vector<int32_t> label;
  for (size_t i = 0; i < n_a + n_b; ++i) {
    x.push_back(static_cast<double>(i));
    label.push_back(i < n_a ? 0 : 1);
  }
  d.AddNumeric("x", std::move(x)).Abort();
  d.AddCategorical("class", std::move(label), {"a", "b"}).Abort();
  return d;
}

TEST(UndersampleTest, ReachesParity) {
  Dataset d = MakeLabeled(100, 30);
  Rng rng(1);
  auto r = UndersampleToParity(d, "class", &rng);
  ASSERT_TRUE(r.ok());
  const Dataset& out = r.ValueOrDie();
  EXPECT_EQ(out.num_rows(), 60u);
  const auto* col = out.FindCategorical("class").ValueOrDie();
  std::vector<double> fr = col->Fractions();
  EXPECT_DOUBLE_EQ(fr[0], 0.5);
  EXPECT_DOUBLE_EQ(fr[1], 0.5);
}

TEST(UndersampleTest, AlreadyBalancedKeepsAllRows) {
  Dataset d = MakeLabeled(25, 25);
  Rng rng(2);
  auto r = UndersampleToParity(d, "class", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 50u);
}

TEST(UndersampleTest, MissingColumnRejected) {
  Dataset d = MakeLabeled(4, 4);
  Rng rng(3);
  EXPECT_FALSE(UndersampleToParity(d, "missing", &rng).ok());
}

TEST(UndersampleTest, RowsComeFromOriginal) {
  Dataset d = MakeLabeled(20, 5);
  Rng rng(4);
  auto r = UndersampleToParity(d, "class", &rng);
  ASSERT_TRUE(r.ok());
  // Every minority x must survive: the five values 20..24.
  const auto* x = r.ValueOrDie().FindNumeric("x").ValueOrDie();
  const auto* cls = r.ValueOrDie().FindCategorical("class").ValueOrDie();
  size_t minority_seen = 0;
  for (size_t i = 0; i < r.ValueOrDie().num_rows(); ++i) {
    if (cls->codes[i] == 1) {
      EXPECT_GE(x->values[i], 20.0);
      ++minority_seen;
    }
  }
  EXPECT_EQ(minority_seen, 5u);
}

TEST(SampleRowsTest, SizeAndBounds) {
  Dataset d = MakeLabeled(40, 10);
  Rng rng(5);
  auto r = SampleRows(d, 12, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 12u);
  EXPECT_FALSE(SampleRows(d, 100, &rng).ok());
}

TEST(SampleRowsTest, DeterministicGivenSeed) {
  Dataset d = MakeLabeled(40, 10);
  Rng rng_a(7), rng_b(7);
  auto a = SampleRows(d, 10, &rng_a);
  auto b = SampleRows(d, 10, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().FindNumeric("x").ValueOrDie()->values,
            b.ValueOrDie().FindNumeric("x").ValueOrDie()->values);
}

}  // namespace
}  // namespace data
}  // namespace fairkm
