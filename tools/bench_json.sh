#!/usr/bin/env bash
# Runs the scaling bench and records its timings as JSON, so the perf
# trajectory of the FairKM hot loop is tracked PR over PR.
#
#   tools/bench_json.sh                 # writes BENCH_scaling.json at repo root
#   OUT=/tmp/b.json tools/bench_json.sh # custom output path
#
# The "before/after" anchor pair is BM_SweepCandidates_Reference (the
# pre-optimization kernels, kept in FairKMState as oracles) vs
# BM_SweepCandidates_DeltaKernels (the batched K-Means pass + O(1) fairness
# closed form); the script prints their ratio and fails if the speedup
# regresses below MIN_SPEEDUP (default 2.0).
#
# Knobs: BUILD_DIR (default build), OUT (default BENCH_scaling.json),
# FILTER (default: the FairKM sweep/kernel benches), MIN_TIME (default 0.2),
# MIN_SPEEDUP (default 2.0).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_scaling.json}
FILTER=${FILTER:-'SweepCandidates|FairKM_AllAttributes|FairKM_MiniBatch|FairKM_ParallelSweep|MoveDeltaEvaluation'}
MIN_TIME=${MIN_TIME:-0.2}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
BENCH="$BUILD_DIR/bench/bench_scaling"

if [[ ! -x "$BENCH" ]]; then
  echo "bench_json: $BENCH not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_scaling" >&2
  exit 2
fi

"$BENCH" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# Speedup gate: reference kernels vs delta kernels, from the JSON just
# written (works for both real google-benchmark and the vendored shim — the
# schema is the same).
jq -e --argjson min "$MIN_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_SweepCandidates_Reference") | .real_time) as $ref
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels") | .real_time) as $opt
  | ($ref / $opt) as $speedup
  | "candidate-evaluation speedup: \($speedup * 100 | round / 100)x (reference \($ref) vs delta kernels \($opt))",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("speedup \($speedup) below required \($min)x") end)
' "$OUT"

echo "wrote $OUT"
