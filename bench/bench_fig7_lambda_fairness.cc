// Reproduces paper Figure 7: Kinematics — fairness measures (AE/AW/ME/MW,
// mean across S) vs lambda in [1000, 10000], FairKM, k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 7 — Kinematics: fairness measures vs lambda", env);
  RunLambdaSweep(KinematicsData(), "fairness", env);
  return 0;
}
