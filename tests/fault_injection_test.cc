#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <string>

#include "common/timer.h"

namespace fairkm {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

Status GuardedOperation() {
  FAIRKM_FAULT_POINT("fault_test.op");
  return Status::OK();
}

TEST_F(FaultInjectionTest, DisarmedIsFreeAndOk) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_TRUE(GuardedOperation().ok());
  fault::FaultAction action;
  EXPECT_FALSE(fault::Hit("fault_test.op", &action));
}

TEST_F(FaultInjectionTest, ErrorFaultFiresWithDefaultMessage) {
  fault::Arm("fault_test.op", fault::FaultSpec{});
  EXPECT_TRUE(fault::Enabled());
  Status st = GuardedOperation();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("fault_test.op"), std::string::npos);
  EXPECT_EQ(fault::HitCount("fault_test.op"), 1u);
}

TEST_F(FaultInjectionTest, ErrorFaultCarriesConfiguredCodeAndMessage) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kDataLoss;
  spec.message = "disk ate it";
  fault::Arm("fault_test.op", spec);
  Status st = GuardedOperation();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(st.message(), "disk ate it");
}

TEST_F(FaultInjectionTest, UnrelatedPointIsUnaffected) {
  fault::Arm("fault_test.other", fault::FaultSpec{});
  EXPECT_TRUE(fault::Enabled());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, SkipDelaysFirstFiring) {
  fault::FaultSpec spec;
  spec.skip = 2;
  fault::Arm("fault_test.op", spec);
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_EQ(fault::HitCount("fault_test.op"), 3u);
}

TEST_F(FaultInjectionTest, MaxFiresSelfDisarms) {
  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("fault_test.op", spec);
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(fault::Enabled());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, DisarmStopsFiring) {
  fault::Arm("fault_test.op", fault::FaultSpec{});
  EXPECT_FALSE(GuardedOperation().ok());
  fault::Disarm("fault_test.op");
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, DelayFaultSleepsThenSucceeds) {
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kDelay;
  spec.delay_seconds = 0.02;
  fault::Arm("fault_test.op", spec);
  Timer timer;
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
}

TEST_F(FaultInjectionTest, ShortWriteReachingPlainPointIsLoud) {
  // A short-write fault armed on a point that has no I/O layer to interpret
  // it must still surface as an error, never be silently swallowed.
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kShortWrite;
  spec.keep_bytes = 3;
  fault::Arm("fault_test.op", spec);
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kIOError);
}

TEST_F(FaultInjectionTest, HitReportsActionDetails) {
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kShortWrite;
  spec.keep_bytes = 17;
  fault::Arm("fault_test.op", spec);
  fault::FaultAction action;
  ASSERT_TRUE(fault::Hit("fault_test.op", &action));
  EXPECT_EQ(action.kind, fault::Kind::kShortWrite);
  EXPECT_EQ(action.keep_bytes, 17u);
}

TEST_F(FaultInjectionTest, ArmFromStringParsesClauses) {
  Status st = fault::ArmFromString(
      "a.write=error,code=dataloss,skip=1,fires=2;"
      "b.rename=torn,keep=8;"
      "c.batch=delay,seconds=0.5");
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_TRUE(fault::Enabled());

  fault::FaultAction action;
  EXPECT_FALSE(fault::Hit("a.write", &action));  // skip=1
  ASSERT_TRUE(fault::Hit("a.write", &action));
  EXPECT_EQ(action.status.code(), StatusCode::kDataLoss);

  ASSERT_TRUE(fault::Hit("b.rename", &action));
  EXPECT_EQ(action.kind, fault::Kind::kTornRename);
  EXPECT_EQ(action.keep_bytes, 8u);

  ASSERT_TRUE(fault::Hit("c.batch", &action));
  EXPECT_EQ(action.kind, fault::Kind::kDelay);
  EXPECT_EQ(action.delay_seconds, 0.5);
}

TEST_F(FaultInjectionTest, ArmFromStringRejectsMalformedInput) {
  EXPECT_EQ(fault::ArmFromString("justapoint").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::ArmFromString("p=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::ArmFromString("p=error,code=nope").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::ArmFromString("p=error,skip=-1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::ArmFromString("p=delay,seconds=fast").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fault::ArmFromString("p=").code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultInjectionTest, TornRenameDefaultsToHalfSentinel) {
  ASSERT_TRUE(fault::ArmFromString("p=torn").ok());
  fault::FaultAction action;
  ASSERT_TRUE(fault::Hit("p", &action));
  EXPECT_EQ(action.keep_bytes, SIZE_MAX);  // resolved to half by the I/O layer
}

TEST_F(FaultInjectionTest, ShortDefaultsToZeroKeep) {
  ASSERT_TRUE(fault::ArmFromString("p=short").ok());
  fault::FaultAction action;
  ASSERT_TRUE(fault::Hit("p", &action));
  EXPECT_EQ(action.keep_bytes, 0u);
}

TEST_F(FaultInjectionTest, DiskFullAlwaysSurfacesAsResourceExhausted) {
  // Disk-full is the typed resource error regardless of any `code` option:
  // the degradation ladders key on kResourceExhausted specifically.
  ASSERT_TRUE(fault::ArmFromString("p=diskfull,code=io").ok());
  fault::FaultAction action;
  ASSERT_TRUE(fault::Hit("p", &action));
  EXPECT_EQ(action.kind, fault::Kind::kDiskFull);
  EXPECT_EQ(action.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(action.status.message().find("ENOSPC"), std::string::npos);
}

TEST_F(FaultInjectionTest, KillSpecParsesWithSkipAndFires) {
  // Only parsing is exercised here — actually hitting a kKill point sends
  // SIGKILL to the process (the crash harness's kill site).
  ASSERT_TRUE(fault::ArmFromString("checkpoint.write=kill,skip=3").ok());
  fault::FaultAction action;
  EXPECT_FALSE(fault::Hit("checkpoint.write", &action));  // skip=3: hit 0
  EXPECT_FALSE(fault::Hit("checkpoint.write", &action));  // hit 1
  EXPECT_EQ(fault::HitCount("checkpoint.write"), 2u);
  fault::DisarmAll();
  EXPECT_EQ(fault::ArmFromString("p=kill,skip=oops").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairkm
