#!/usr/bin/env bash
# Runs the scaling bench and records its timings as JSON, so the perf
# trajectory of the FairKM hot loop is tracked PR over PR.
#
#   tools/bench_json.sh                 # writes BENCH_scaling.json at repo root
#   OUT=/tmp/b.json tools/bench_json.sh # custom output path
#
# Two gates run against the JSON just written:
#   1. Delta-kernel speedup: BM_SweepCandidates_Reference (the
#      pre-optimization kernels, kept in FairKMState as oracles) vs
#      BM_SweepCandidates_DeltaKernels (the batched K-Means pass + O(1)
#      fairness closed form, routed through the dispatch-selected kernel
#      backend). Fails below MIN_SPEEDUP (default 2.0).
#   2. SIMD dispatch sanity: BM_KernelGemv_Scalar/256 vs
#      BM_KernelGemv_Dispatch/256 (cpu_time). The dispatch-selected backend
#      must at least match the scalar kernel — ratio >= MIN_SIMD_RATIO
#      (default 0.9). The d=256 GEMV microbench is the gate anchor because
#      it is far less noisy than the sweep-level pair (identical code
#      measures within ~1% run-to-run, vs ~15% wobble for the 0.4 ms sweep
#      loop on shared runners) while a genuine SIMD regression still shows
#      up at full magnitude. The sweep-level scalar-vs-dispatch pair
#      (BM_SweepCandidates_DeltaKernels_Scalar vs _DeltaKernels) is recorded
#      and printed for trend tracking but not gated.
# The BM_ActiveKernelBackend_<name> marker entry records which backend the
# runtime dispatch picked for this host/run.
#
# Knobs: BUILD_DIR (default build), OUT (default BENCH_scaling.json),
# FILTER (default: the FairKM sweep/kernel benches), MIN_TIME (default 0.2),
# MIN_SPEEDUP (default 2.0), MIN_SIMD_RATIO (default 0.9).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_scaling.json}
FILTER=${FILTER:-'SweepCandidates|FairKM_AllAttributes|FairKM_MiniBatch|FairKM_ParallelSweep|MoveDeltaEvaluation|KernelGemv|KernelCatMoments|ActiveKernelBackend'}
MIN_TIME=${MIN_TIME:-0.2}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
MIN_SIMD_RATIO=${MIN_SIMD_RATIO:-0.9}
BENCH="$BUILD_DIR/bench/bench_scaling"

if [[ ! -x "$BENCH" ]]; then
  echo "bench_json: $BENCH not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_scaling" >&2
  exit 2
fi

"$BENCH" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

# Gate 1: reference kernels vs delta kernels, from the JSON just written
# (works for both real google-benchmark and the vendored shim — the schema
# is the same).
jq -e --argjson min "$MIN_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_SweepCandidates_Reference") | .real_time) as $ref
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels") | .real_time) as $opt
  | ($ref / $opt) as $speedup
  | "candidate-evaluation speedup: \($speedup * 100 | round / 100)x (reference \($ref) vs delta kernels \($opt))",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("speedup \($speedup) below required \($min)x") end)
' "$OUT"

# Gate 2: the dispatch-selected kernel backend must not regress the GEMV
# primitive relative to the pinned-scalar backend (d = 256, cpu_time).
# The sweep-level ratio is printed alongside for trend tracking.
jq -e --argjson min "$MIN_SIMD_RATIO" '
  (.benchmarks[] | select(.name == "BM_KernelGemv_Scalar/256") | .cpu_time) as $scalar
  | (.benchmarks[] | select(.name == "BM_KernelGemv_Dispatch/256") | .cpu_time) as $dispatch
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels_Scalar") | .real_time) as $sweep_scalar
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels") | .real_time) as $sweep_dispatch
  | ([.benchmarks[] | select(.name | startswith("BM_ActiveKernelBackend_")) | .name
      | ltrimstr("BM_ActiveKernelBackend_")] | first // "unknown") as $backend
  | ($scalar / $dispatch) as $ratio
  | "dispatch backend: \($backend); scalar-vs-dispatch GEMV(d=256) ratio: \($ratio * 100 | round / 100)x, sweep ratio: \($sweep_scalar / $sweep_dispatch * 100 | round / 100)x",
    (if $ratio >= $min then "OK: >= \($min)x"
     else error("dispatch backend \($backend) regresses the GEMV kernel: ratio \($ratio) below \($min)") end)
' "$OUT"

echo "wrote $OUT"
