#include "common/status.h"

#include <cstdio>
#include <ostream>

namespace fairkm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kNotConverged:
      return "Not converged";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::Abort() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fairkm
