// String helpers used by the CSV codec, arg parsing and table printing.

#ifndef FAIRKM_COMMON_STRING_UTIL_H_
#define FAIRKM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairkm {

/// \brief Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// \brief Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief ASCII lower-casing.
std::string ToLower(std::string_view s);

/// \brief Fixed-precision formatting (printf "%.*f").
std::string FormatDouble(double value, int precision);

/// \brief Left-pads `s` with spaces to `width` (no-op if already wider).
std::string PadLeft(std::string_view s, size_t width);

/// \brief Right-pads `s` with spaces to `width`.
std::string PadRight(std::string_view s, size_t width);

/// \brief Parses a double; returns false on malformed or trailing input.
bool ParseDouble(std::string_view s, double* out);

/// \brief Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace fairkm

#endif  // FAIRKM_COMMON_STRING_UTIL_H_
