#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fairkm {
namespace {

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nhi\r "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ToLowerTest, Basics) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("   ", &v));
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, InvalidInputs) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("3.5", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
}

}  // namespace
}  // namespace fairkm
