// Property tests for the incremental FairKM state: every O(1)/O(m) move
// delta must match brute-force recomputation of the objective terms.

#include "core/fairkm_state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.h"
#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

using cluster::Assignment;

struct World {
  data::Matrix points;
  data::SensitiveView sensitive;
  Assignment assignment;
  int k;
};

World MakeWorld(uint64_t seed, int k, size_t n, int dim, bool with_numeric) {
  Rng rng(seed);
  World w;
  w.k = k;
  w.points = data::Matrix(n, static_cast<size_t>(dim));
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      w.points.At(i, static_cast<size_t>(j)) = rng.Normal(0, 2.0);
    }
  }
  w.sensitive = testutil::MakeView(
      {testutil::MakeCategorical(testutil::RandomCodes(n, 3, &rng), 3, "a3"),
       testutil::MakeCategorical(testutil::RandomCodes(n, 5, &rng), 5, "a5")});
  if (with_numeric) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = rng.Normal(10, 4);
    w.sensitive.numeric.push_back(testutil::MakeNumeric(values));
  }
  w.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    w.assignment[i] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(k)));
  }
  return w;
}

class DeltaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaSweep, DeltasMatchBruteForceRecomputation) {
  World w = MakeWorld(GetParam(), 4, 40, 3, /*with_numeric=*/true);
  FairnessTermConfig config;
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, config)
          .ValueOrDie();

  Rng rng(GetParam() ^ 0xABC);
  Assignment current = w.assignment;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t i = static_cast<size_t>(rng.UniformInt(uint64_t{40}));
    const int to = static_cast<int>(rng.UniformInt(uint64_t{4}));

    const ObjectiveValue before = ComputeObjective(w.points, w.sensitive, current,
                                                   w.k, config);
    Assignment moved = current;
    moved[i] = static_cast<int32_t>(to);
    const ObjectiveValue after =
        ComputeObjective(w.points, w.sensitive, moved, w.k, config);

    EXPECT_NEAR(state.DeltaKMeans(i, to), after.kmeans_term - before.kmeans_term,
                1e-7)
        << "trial " << trial;
    EXPECT_NEAR(state.DeltaFairness(i, to),
                after.fairness_term - before.fairness_term, 1e-12)
        << "trial " << trial;

    // Occasionally commit the move so the state drifts through many shapes.
    if (trial % 3 == 0) {
      state.Move(i, to);
      current = moved;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaSweep, ::testing::Range(uint64_t{1}, uint64_t{9}));

class WeightingSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(WeightingSweep, DeltasMatchUnderAllWeightingModes) {
  const auto [mode_idx, normalize] = GetParam();
  FairnessTermConfig config;
  config.weighting = static_cast<ClusterWeighting>(mode_idx);
  config.normalize_domain = normalize;

  World w = MakeWorld(99 + static_cast<uint64_t>(mode_idx), 3, 30, 2, true);
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, config)
          .ValueOrDie();
  Rng rng(5);
  Assignment current = w.assignment;
  for (int trial = 0; trial < 40; ++trial) {
    const size_t i = static_cast<size_t>(rng.UniformInt(uint64_t{30}));
    const int to = static_cast<int>(rng.UniformInt(uint64_t{3}));
    Assignment moved = current;
    moved[i] = static_cast<int32_t>(to);
    const double expected =
        ComputeFairnessTerm(w.sensitive, moved, w.k, config) -
        ComputeFairnessTerm(w.sensitive, current, w.k, config);
    EXPECT_NEAR(state.DeltaFairness(i, to), expected, 1e-12);
    state.Move(i, to);
    current = moved;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, WeightingSweep,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Bool()));

TEST(FairKMStateTest, MoveToSameClusterIsZeroDelta) {
  World w = MakeWorld(7, 3, 20, 2, false);
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, {})
          .ValueOrDie();
  for (size_t i = 0; i < 20; ++i) {
    const int own = state.cluster_of(i);
    EXPECT_EQ(state.DeltaKMeans(i, own), 0.0);
    EXPECT_EQ(state.DeltaFairness(i, own), 0.0);
  }
}

TEST(FairKMStateTest, TermsMatchScratchEvaluation) {
  World w = MakeWorld(11, 4, 35, 3, true);
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, {})
          .ValueOrDie();
  ObjectiveValue scratch = ComputeObjective(w.points, w.sensitive, w.assignment, w.k);
  EXPECT_NEAR(state.KMeansTerm(), scratch.kmeans_term, 1e-8);
  EXPECT_NEAR(state.FairnessTerm(), scratch.fairness_term, 1e-12);
}

TEST(FairKMStateTest, MovesKeepAggregatesConsistent) {
  World w = MakeWorld(13, 3, 25, 2, true);
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, {})
          .ValueOrDie();
  Rng rng(17);
  Assignment current = w.assignment;
  for (int t = 0; t < 100; ++t) {
    const size_t i = static_cast<size_t>(rng.UniformInt(uint64_t{25}));
    const int to = static_cast<int>(rng.UniformInt(uint64_t{3}));
    state.Move(i, to);
    current[i] = static_cast<int32_t>(to);
  }
  EXPECT_EQ(state.assignment(), current);
  ObjectiveValue scratch = ComputeObjective(w.points, w.sensitive, current, w.k);
  EXPECT_NEAR(state.KMeansTerm(), scratch.kmeans_term, 1e-7);
  EXPECT_NEAR(state.FairnessTerm(), scratch.fairness_term, 1e-12);
  // Centroids match batch computation.
  data::Matrix expected = cluster::ComputeCentroids(w.points, current, w.k);
  data::Matrix actual = state.Centroids();
  for (size_t r = 0; r < expected.rows(); ++r) {
    for (size_t c = 0; c < expected.cols(); ++c) {
      EXPECT_NEAR(actual.At(r, c), expected.At(r, c), 1e-9);
    }
  }
}

TEST(FairKMStateTest, EmptyAndSingletonClusterEdgeCases) {
  // 3 points, 3 clusters, all initially in cluster 0.
  data::Matrix pts(3, 1);
  pts.At(0, 0) = 0;
  pts.At(1, 0) = 1;
  pts.At(2, 0) = 5;
  data::SensitiveView view = testutil::MakeView(
      {testutil::MakeCategorical({0, 1, 0}, 2)});
  Assignment a = {0, 0, 0};
  auto state = FairKMState::Create(&pts, &view, 3, a, {}).ValueOrDie();

  // Delta of moving into an empty cluster matches brute force.
  Assignment moved = a;
  moved[2] = 1;
  ObjectiveValue before = ComputeObjective(pts, view, a, 3);
  ObjectiveValue after = ComputeObjective(pts, view, moved, 3);
  EXPECT_NEAR(state.DeltaKMeans(2, 1), after.kmeans_term - before.kmeans_term, 1e-9);
  EXPECT_NEAR(state.DeltaFairness(2, 1), after.fairness_term - before.fairness_term,
              1e-12);
  state.Move(2, 1);

  // Now cluster 1 is a singleton; move it out again (singleton removal).
  Assignment a2 = state.assignment();
  Assignment moved2 = a2;
  moved2[2] = 2;
  before = ComputeObjective(pts, view, a2, 3);
  after = ComputeObjective(pts, view, moved2, 3);
  EXPECT_NEAR(state.DeltaKMeans(2, 2), after.kmeans_term - before.kmeans_term, 1e-9);
  EXPECT_NEAR(state.DeltaFairness(2, 2), after.fairness_term - before.fairness_term,
              1e-12);
}

TEST(FairKMStateTest, CreateValidatesInputs) {
  World w = MakeWorld(1, 2, 10, 2, false);
  EXPECT_FALSE(FairKMState::Create(nullptr, &w.sensitive, 2, w.assignment).ok());
  EXPECT_FALSE(FairKMState::Create(&w.points, nullptr, 2, w.assignment).ok());
  EXPECT_FALSE(FairKMState::Create(&w.points, &w.sensitive, 0, w.assignment).ok());
  Assignment bad = w.assignment;
  bad[0] = 7;
  EXPECT_FALSE(FairKMState::Create(&w.points, &w.sensitive, 2, bad).ok());
}

TEST(FairKMStateTest, PrototypeSnapshotFreezesKMeansDeltas) {
  World w = MakeWorld(21, 3, 30, 2, false);
  auto state =
      FairKMState::Create(&w.points, &w.sensitive, w.k, w.assignment, {})
          .ValueOrDie();
  state.EnablePrototypeSnapshot(true);
  const double before = state.DeltaKMeans(0, (state.cluster_of(0) + 1) % 3);
  // Move a *different* point; with the snapshot on, point 0's delta is
  // unchanged even though live sums shifted.
  state.Move(5, (state.cluster_of(5) + 1) % 3);
  const double after = state.DeltaKMeans(0, (state.cluster_of(0) + 1) % 3);
  EXPECT_EQ(before, after);
  // Refresh resynchronizes with the live aggregates.
  state.RefreshPrototypes();
  state.EnablePrototypeSnapshot(false);
  SUCCEED();
}

}  // namespace
}  // namespace core
}  // namespace fairkm
