#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace fairkm {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string PadLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string PadRight(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf = Trim(s);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string buf = Trim(s);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace fairkm
