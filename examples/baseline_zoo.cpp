// Baseline zoo: every clustering method in the library on one workload.
//
//   $ ./examples/baseline_zoo --k 4
//
// Runs, on the kinematics question bank with the binary "type_1" attribute:
//   * S-blind K-Means (Lloyd),
//   * FairKM (this paper),
//   * ZGYA, soft variational (published baseline) and exact hard moves,
//   * Bera et al. LP fair assignment (bounded group shares per cluster),
//   * fairlet decomposition (Chierichetti et al., balance guarantee),
// and reports coherence (SSE), fairness (AE) and the Chierichetti balance.
// The two LP-based methods run on our built-from-scratch simplex solver.

#include <cstdio>

#include "cluster/bera_lp.h"
#include "cluster/clusterer.h"
#include "cluster/fairlet.h"
#include "cluster/kmeans.h"
#include "common/args.h"
#include "core/solver.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

using namespace fairkm;

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("k", "4", "number of clusters");
  args.AddFlag("seed", "5", "random seed");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("baseline_zoo").c_str());
    return 1;
  }
  const int k = static_cast<int>(args.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));

  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  auto view = data.sensitive.SelectCategorical("type_1").ValueOrDie();
  const auto& attr = view.categorical[0];

  std::printf("Baseline zoo on Kinematics (n = %zu, k = %d, attribute type_1)\n\n",
              data.features.rows(), k);

  exp::TablePrinter table({"Method", "SSE", "AE(type_1)", "min balance"});
  auto add = [&](const std::string& name, const cluster::Assignment& assignment) {
    auto fairness = metrics::EvaluateAttributeFairness(attr, assignment, k);
    table.AddRow({name,
                  exp::Cell(metrics::ClusteringObjective(data.features, assignment, k),
                            2),
                  exp::Cell(fairness.ae),
                  exp::Cell(metrics::MinClusterBalance(attr, assignment, k), 3)});
  };

  // The registry-backed methods, selected uniformly by name (this is the
  // cluster::Clusterer registry the exp runner and fairkm_cli use too).
  core::EnsureFairKMClustererRegistered();
  auto run_registered = [&](const std::string& name, const char* label,
                            double lambda, double soft_temperature)
      -> cluster::ClusteringResult {
    cluster::ClustererOptions copt;
    copt.k = k;
    copt.lambda = lambda;
    copt.soft_temperature = soft_temperature;
    auto clusterer = cluster::CreateClusterer(name, copt).ValueOrDie();
    Rng method_rng(seed);
    auto result = clusterer->Cluster(data.features, view, &method_rng).ValueOrDie();
    add(label, result.assignment);
    return result;
  };
  auto blind = run_registered("kmeans", "K-Means (blind)", -1.0, -1.0);
  run_registered("fairkm", "FairKM", data.paper_lambda, -1.0);
  run_registered("zgya", "ZGYA (soft, published)", data.zgya_lambda,
                 data.zgya_soft_temperature);
  run_registered("zgya-hard", "ZGYA (hard moves)", data.zgya_lambda,
                 data.zgya_soft_temperature);

  // Bera et al. LP fair assignment against the blind centers.
  cluster::BeraOptions bopt;
  bopt.bound_slack = 0.25;
  auto bera =
      cluster::RunBeraFairAssignment(data.features, blind.centroids, view, bopt);
  if (bera.ok()) {
    add("Bera LP (slack 0.25)", bera.ValueOrDie().assignment);
  } else {
    std::fprintf(stderr, "Bera LP failed: %s\n", bera.status().ToString().c_str());
  }

  // Fairlet decomposition with exact transportation-LP refinement.
  cluster::FairletOptions flopt;
  flopt.k = k;
  flopt.refine_with_lp = true;
  Rng r5(seed);
  auto fairlet = cluster::RunFairletClustering(data.features, attr, flopt, &r5);
  if (fairlet.ok()) {
    add("Fairlets (LP refined)", fairlet.ValueOrDie().assignment);
    std::printf("fairlet decomposition: %zu fairlets, guaranteed balance >= %.3f\n\n",
                fairlet.ValueOrDie().fairlets.size(),
                fairlet.ValueOrDie().min_cluster_balance);
  } else {
    std::fprintf(stderr, "fairlets failed: %s\n",
                 fairlet.status().ToString().c_str());
  }

  table.Print();
  std::printf(
      "\nReading guide: FairKM gives the best fairness-per-SSE trade-off; the\n"
      "fairlet method guarantees a balance floor by construction; the Bera LP\n"
      "keeps group shares inside multiplicative bounds of the dataset share.\n");
  return 0;
}
