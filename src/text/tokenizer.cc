#include "text/tokenizer.h"

#include <cctype>

namespace fairkm {
namespace text {

std::vector<std::string> Tokenize(const std::string& input) {
  std::vector<std::string> tokens;
  std::string current;
  bool all_digits = true;
  auto flush = [&]() {
    if (current.empty()) return;
    tokens.push_back(all_digits ? "<num>" : current);
    current.clear();
    all_digits = true;
  };
  for (char raw : input) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (!std::isdigit(c)) all_digits = false;
      current += static_cast<char>(std::tolower(c));
    } else if (c == '.' && !current.empty() && all_digits) {
      // Keep decimal numbers as a single <num> token.
      current += '.';
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace text
}  // namespace fairkm
